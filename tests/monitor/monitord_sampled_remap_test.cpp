// Sampled incremental re-maps: the session's mapper options carry the
// hierarchical-sampling knobs (max_pairwise / sample_seed, PR 8) into
// the daemon's drift response — Session::make_monitor copies them into
// MonitorOptions::remap. The contract mirrors the mapper's own:
// a sampled re-map costs no more probes than the full one, engages the
// sampler when the budget binds, and the whole monitoring run stays a
// pure deterministic function of (scenario, fault spec, options).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/envnws.hpp"
#include "monitor/daemon.hpp"

namespace envnws {
namespace {

using api::ScenarioRegistry;
using api::Session;

struct SampledRun {
  std::string digest;
  std::vector<std::string> decisions;
  std::uint64_t remaps = 0;
  std::uint64_t remap_experiments = 0;
  env::SampleStats remap_sampling;  ///< summed over re-mapped zones
};

/// Drift on an 8-host switched star (one clique, one probe per cycle):
/// the 56-pair rotation revisits a pair every 56 cycles, so bw#117
/// (= pair 5, already measured at cycles 5 and 61) lands on a warm
/// drift window, the detector trips and the daemon re-maps the full
/// 8-host segment — large enough for a 1-pair budget to force sampling
/// (7 non-master members, 21 pairs).
SampledRun run_with_sampled_remap(int max_pairwise, std::uint64_t sample_seed) {
  SampledRun run;
  auto scenario = ScenarioRegistry::builtin().make("star-switch:8");
  EXPECT_TRUE(scenario.ok());
  simnet::Network net(simnet::Scenario(scenario.value()).topology);
  Session session(net, scenario.value());
  // Full-protocol initial map; only the drift re-maps sample.
  EXPECT_TRUE(session.plan().ok());
  EXPECT_TRUE(session.set_probe_engine_spec("fault:bw#117=scale:0.35@sim").ok());
  session.options().mapper.max_pairwise = max_pairwise;
  session.options().mapper.sample_seed = sample_seed;

  monitor::MonitorOptions options;
  options.drift.relative_error_threshold = 0.2;
  options.drift.window = 4;
  options.drift.min_samples = 2;
  options.drift.cooldown_cycles = 30;
  auto made = session.make_monitor(options);
  EXPECT_TRUE(made.ok()) << (made.ok() ? "" : made.error().to_string());
  if (!made.ok()) return run;
  std::unique_ptr<monitor::MonitorDaemon> daemon = std::move(made.value());
  daemon->set_remap_sink([&run](const std::string&, const env::ZoneMapResult& zone) {
    run.remap_sampling += zone.sampling;
  });
  EXPECT_TRUE(daemon->run_cycles(125).ok());
  run.digest = daemon->snapshot()->digest();
  run.decisions = daemon->decision_log();
  run.remaps = daemon->remaps();
  run.remap_experiments = daemon->remap_experiments();
  return run;
}

TEST(MonitordSampledRemap, BudgetEngagesTheSamplerWithoutExtraProbes) {
  const SampledRun full = run_with_sampled_remap(0, 1);
  ASSERT_EQ(full.remaps, 1u);
  EXPECT_EQ(full.remap_sampling.sampled_groups, 0u);
  EXPECT_EQ(full.remap_sampling.representatives, 0u);

  const SampledRun sampled = run_with_sampled_remap(1, 1);
  ASSERT_EQ(sampled.remaps, 1u);
  // The budget bound the re-map's pairwise phase: representatives ran,
  // the rest of the segment was placed by inference/escalation.
  EXPECT_GT(sampled.remap_sampling.sampled_groups, 0u);
  EXPECT_GT(sampled.remap_sampling.representatives, 0u);
  EXPECT_LE(sampled.remap_experiments, full.remap_experiments);
}

TEST(MonitordSampledRemap, SampledRunsAreDeterministicPerSeed) {
  const SampledRun one = run_with_sampled_remap(1, 42);
  const SampledRun two = run_with_sampled_remap(1, 42);
  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.decisions, two.decisions);
  EXPECT_EQ(one.remap_experiments, two.remap_experiments);
  EXPECT_EQ(one.remap_sampling.representatives, two.remap_sampling.representatives);
  EXPECT_EQ(one.remap_sampling.inferred_members, two.remap_sampling.inferred_members);
}

}  // namespace
}  // namespace envnws
