// monitord over real sockets: a live loopback agent fleet behind the
// daemon, the query front-end under concurrent client load, and the
// record/replay proof that neither changes what is measured.
//
// Hermetic to 127.0.0.1 (ENVNWS_TEST_NO_NET=1 skips the suite) and
// deterministic: fixed-rate agents make the recorded monitoring session
// reproducible, and the replayed runs assert THE acceptance property —
// the same trace + config produces bit-identical snapshot digests and
// identical drift decisions whether 1 or 8 query clients hammer the
// daemon while it measures.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/envnws.hpp"
#include "env/probe_agent.hpp"
#include "monitor/daemon.hpp"
#include "monitor/query_server.hpp"

namespace envnws::api {
namespace {

namespace fs = std::filesystem;

bool no_net() {
  const char* flag = std::getenv("ENVNWS_TEST_NO_NET");
  return flag != nullptr && std::string(flag) == "1";
}

#define SKIP_WITHOUT_NET()                                    \
  do {                                                        \
    if (no_net()) GTEST_SKIP() << "ENVNWS_TEST_NO_NET=1 set"; \
  } while (0)

simnet::Scenario make_scenario(const std::string& spec) {
  auto made = ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(made.ok()) << spec;
  return std::move(made.value());
}

/// One fixed-rate loopback agent per scenario host (the socket_engine
/// suite's fixture, trimmed to what monitord needs).
class AgentFleet {
 public:
  void spawn(const simnet::Scenario& scenario, const std::string& roster_name) {
    for (const simnet::NodeId id : scenario.topology.hosts()) {
      const simnet::Node& node = scenario.topology.node(id);
      env::ProbeAgentConfig config;
      config.name = node.fqdn.empty() ? node.name : node.fqdn;
      config.fqdn = node.fqdn;
      config.fixed_rate_bps = 1e9;
      config.io_timeout_s = 20.0;
      agents_.push_back(std::make_unique<env::ProbeAgent>(std::move(config)));
      ASSERT_TRUE(agents_.back()->start().ok()) << node.name;
    }
    roster_path_ = (fs::path(::testing::TempDir()) / roster_name).string();
    std::ofstream out(roster_path_, std::ios::trunc);
    for (const auto& agent : agents_) {
      out << agent->config().name << " 127.0.0.1:" << agent->port() << "\n";
    }
  }

  void stop_all() {
    for (auto& agent : agents_) agent->stop();
  }

  [[nodiscard]] const std::string& roster_path() const { return roster_path_; }

 private:
  std::vector<std::unique_ptr<env::ProbeAgent>> agents_;
  std::string roster_path_;
};

struct MonitordRun {
  std::string digest;
  std::vector<std::string> decisions;
  std::uint64_t measurements = 0;
  std::uint64_t failures = 0;
  std::uint64_t queries_served = 0;
  std::uint64_t client_snapshots_ok = 0;
};

/// Plan under "sim" (identical plans across runs by construction), then
/// monitor `cycles` cycles through `monitor_spec` with `clients` query
/// clients continuously requesting SNAPSHOT while the loop measures.
MonitordRun run_monitord(const std::string& scenario_spec, const std::string& monitor_spec,
                         std::uint64_t cycles, std::size_t clients) {
  MonitordRun run;
  const auto scenario = make_scenario(scenario_spec);
  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  EXPECT_TRUE(session.plan().ok());
  // Loopback probe tuning — recorded and replayed sessions must agree
  // (the trace replays only under the schedule that produced it).
  session.options().mapper.probe_bytes = 64 * 1024;
  session.options().mapper.stabilization_gap_s = 0.0;
  EXPECT_TRUE(session.set_probe_engine_spec(monitor_spec).ok()) << monitor_spec;

  auto made = session.make_monitor({});
  EXPECT_TRUE(made.ok()) << (made.ok() ? "" : made.error().to_string());
  if (!made.ok()) return run;
  auto daemon = std::move(made.value());

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots_ok{0};
  std::vector<std::thread> load;
  if (clients > 0) {
    EXPECT_TRUE(daemon->start_query_server("127.0.0.1", 0).ok());
    const std::uint16_t port = daemon->query_port();
    for (std::size_t i = 0; i < clients; ++i) {
      load.emplace_back([port, &done, &snapshots_ok] {
        auto client = monitor::QueryClient::connect("127.0.0.1", port);
        if (!client.ok()) return;
        do {  // at least one request even if the run already finished
          if (auto summary = client.value().snapshot(); summary.ok()) {
            EXPECT_FALSE(summary.value().digest.empty());
            snapshots_ok.fetch_add(1);
          }
        } while (!done.load());
      });
    }
  }

  EXPECT_TRUE(daemon->run_cycles(cycles).ok());
  done.store(true);
  for (auto& thread : load) thread.join();

  run.digest = daemon->snapshot()->digest();
  run.decisions = daemon->decision_log();
  run.measurements = daemon->measurements();
  run.failures = daemon->probe_failures();
  run.queries_served = daemon->queries_served();
  run.client_snapshots_ok = snapshots_ok.load();
  return run;
}

TEST(MonitordSocket, RecordedFleetRunReplaysIdenticallyUnderAnyQueryLoad) {
  SKIP_WITHOUT_NET();
  const std::string trace = (fs::path(::testing::TempDir()) / "monitord-fleet.envtrace").string();
  std::remove(trace.c_str());

  AgentFleet fleet;
  fleet.spawn(make_scenario("star-switch:4"), "monitord-fleet-roster.cfg");

  // Record 12 cycles of live socket monitoring (no query load).
  const auto live = run_monitord("star-switch:4",
                                 "record:" + trace + "@socket:" + fleet.roster_path(), 12, 0);
  EXPECT_EQ(live.failures, 0u);
  EXPECT_EQ(live.measurements, 12u);  // star-switch:4: 1 probe/cycle
  ASSERT_TRUE(fs::exists(trace));

  // The fleet is gone: everything below runs with zero live probes.
  fleet.stop_all();

  // Same trace + same config => identical snapshot digests and drift
  // decisions, with 1 and with 8 concurrent query clients hammering
  // SNAPSHOT during the measurement loop.
  const auto lone = run_monitord("star-switch:4", "replay:" + trace, 12, 1);
  const auto crowd = run_monitord("star-switch:4", "replay:" + trace, 12, 8);
  EXPECT_EQ(lone.digest, live.digest);
  EXPECT_EQ(crowd.digest, live.digest);
  EXPECT_EQ(lone.decisions, live.decisions);
  EXPECT_EQ(crowd.decisions, live.decisions);
  EXPECT_EQ(lone.measurements, live.measurements);
  EXPECT_EQ(crowd.measurements, live.measurements);
  // The load was real: clients got served while the daemon measured.
  EXPECT_GT(lone.client_snapshots_ok, 0u);
  EXPECT_GT(crowd.client_snapshots_ok, 0u);
  EXPECT_GE(crowd.queries_served, crowd.client_snapshots_ok);

  std::remove(trace.c_str());
}

TEST(MonitordSocket, BackgroundDaemonServesEightClientsDuringLiveMeasurement) {
  SKIP_WITHOUT_NET();
  AgentFleet fleet;
  const auto scenario = make_scenario("star-switch:4");
  fleet.spawn(scenario, "monitord-live-roster.cfg");

  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  ASSERT_TRUE(session.plan().ok());
  session.options().mapper.probe_bytes = 64 * 1024;
  session.options().mapper.stabilization_gap_s = 0.0;
  ASSERT_TRUE(session.set_probe_engine_spec("socket:" + fleet.roster_path()).ok());

  monitor::MonitorOptions options;
  options.pace = false;  // background loop at full speed for the test
  auto made = session.make_monitor(options);
  ASSERT_TRUE(made.ok()) << made.error().to_string();
  auto daemon = std::move(made.value());
  ASSERT_TRUE(daemon->start_query_server("127.0.0.1", 0).ok());
  const std::uint16_t port = daemon->query_port();

  ASSERT_TRUE(daemon->start().ok());
  EXPECT_TRUE(daemon->running());
  EXPECT_FALSE(daemon->start().ok());  // the loop is singly owned

  // 8 clients fetch snapshots while the daemon probes the live fleet;
  // each must see the version advance (proof it is served DURING
  // measurement, not after).
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> advanced{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([port, &advanced] {
      auto client = monitor::QueryClient::connect("127.0.0.1", port);
      ASSERT_TRUE(client.ok());
      const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
      std::uint64_t first_version = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        auto summary = client.value().snapshot();
        ASSERT_TRUE(summary.ok());
        if (first_version == 0) first_version = summary.value().version;
        if (summary.value().version > first_version && first_version > 0) {
          advanced.fetch_add(1);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(advanced.load(), 8u);

  daemon->stop();
  EXPECT_FALSE(daemon->running());
  EXPECT_GT(daemon->cycles(), 0u);
  EXPECT_GT(daemon->measurements(), 0u);
  EXPECT_GE(daemon->queries_served(), 16u);

  // Typed QUERY and SERIES round trips against the final state.
  const auto snapshot = daemon->snapshot();
  ASSERT_FALSE(snapshot->pairs.empty());
  const auto& key = snapshot->pairs.front().key;
  auto client = monitor::QueryClient::connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  auto answer = client.value().query(key);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().latest, snapshot->pairs.front().value);
  auto points = client.value().series(key, 4);
  ASSERT_TRUE(points.ok());
  EXPECT_FALSE(points.value().empty());
  auto unknown = client.value().query(nws::SeriesKey{nws::ResourceKind::bandwidth, "no", "pair"});
  EXPECT_FALSE(unknown.ok());

  daemon.reset();  // stops the query server before the fleet goes away
  fleet.stop_all();
}

}  // namespace
}  // namespace envnws::api
