// Determinism and drift-response contract of the monitor daemon, fully
// offline: a recorded monitoring session replays to bit-identical
// snapshot digests and identical drift decisions, and injected drift
// (fault: scale rules) triggers an incremental re-map of ONLY the
// affected segment at a fraction of a full map's probe cost.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "monitor/daemon.hpp"

namespace envnws {
namespace {

using api::ScenarioRegistry;
using api::Session;

simnet::Scenario make_scenario(const std::string& spec) {
  auto made = ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(made.ok()) << spec;
  return std::move(made.value());
}

std::string temp_trace(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// Everything a monitord run leaves behind that the determinism contract
/// covers: the published snapshot identity and the drift decisions.
struct MonitordRun {
  std::string digest;
  std::string render;
  std::vector<std::string> decisions;
  std::uint64_t measurements = 0;
  std::uint64_t failures = 0;
  std::uint64_t remaps = 0;
  std::uint64_t remap_experiments = 0;
  std::uint64_t map_experiments = 0;  ///< full-map probe cost (comparison baseline)
  std::vector<monitor::MonitorEvent> events;
};

/// Plan under "sim" (so the plan derivation never touches the monitoring
/// engine spec), then monitor `cycles` cycles through `monitor_spec`.
MonitordRun run_monitord(const std::string& scenario_spec, const std::string& monitor_spec,
                         std::uint64_t cycles, monitor::MonitorOptions options) {
  MonitordRun run;
  const auto scenario = make_scenario(scenario_spec);
  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  EXPECT_TRUE(session.plan().ok());
  run.map_experiments = session.map_result().stats.experiments;
  EXPECT_TRUE(session.set_probe_engine_spec(monitor_spec).ok()) << monitor_spec;

  auto made = session.make_monitor(options);
  EXPECT_TRUE(made.ok()) << (made.ok() ? "" : made.error().to_string());
  if (!made.ok()) return run;
  std::unique_ptr<monitor::MonitorDaemon> daemon = std::move(made.value());
  daemon->set_observer([&run](const monitor::MonitorEvent& event) { run.events.push_back(event); });
  EXPECT_TRUE(daemon->run_cycles(cycles).ok());

  const auto snapshot = daemon->snapshot();
  run.digest = snapshot->digest();
  run.render = snapshot->render();
  run.decisions = daemon->decision_log();
  run.measurements = daemon->measurements();
  run.failures = daemon->probe_failures();
  run.remaps = daemon->remaps();
  run.remap_experiments = daemon->remap_experiments();
  return run;
}

TEST(MonitordReplay, RecordedRunReplaysToIdenticalSnapshotsAndDecisions) {
  const std::string trace = temp_trace("monitord-sim.envtrace");
  std::remove(trace.c_str());

  monitor::MonitorOptions options;
  options.period_s = 1.0;

  // Record 25 cycles of dumbbell monitoring against the simulator.
  const auto live = run_monitord("dumbbell:3x3", "record:" + trace, 25, options);
  ASSERT_FALSE(live.digest.empty());
  EXPECT_EQ(live.measurements, 75u);  // 3 probes/cycle, none failing
  EXPECT_EQ(live.failures, 0u);
  ASSERT_TRUE(std::filesystem::exists(trace));

  // Strict replay, twice: same trace + same config => identical digests,
  // identical renders, identical decision logs — with zero live probes
  // (replay: has no base engine to fall through to).
  const auto first = run_monitord("dumbbell:3x3", "replay:" + trace, 25, options);
  const auto second = run_monitord("dumbbell:3x3", "replay:" + trace, 25, options);
  EXPECT_EQ(first.digest, live.digest);
  EXPECT_EQ(second.digest, live.digest);
  EXPECT_EQ(first.render, live.render);
  EXPECT_EQ(first.decisions, live.decisions);
  EXPECT_EQ(second.decisions, live.decisions);
  EXPECT_EQ(first.measurements, live.measurements);

  // Digests are invariant under the batch schedule: a replay probing
  // with 4 workers measures exactly what the sequential one did.
  monitor::MonitorOptions batched = options;
  batched.probe_jobs = 4;
  const auto wide = run_monitord("dumbbell:3x3", "replay:" + trace, 25, batched);
  EXPECT_EQ(wide.digest, live.digest);
  EXPECT_EQ(wide.decisions, live.decisions);

  std::remove(trace.c_str());
}

TEST(MonitordReplay, TruncatedTraceSurfacesAsProbeFailuresNotCrashes) {
  const std::string trace = temp_trace("monitord-short.envtrace");
  std::remove(trace.c_str());
  monitor::MonitorOptions options;
  const auto live = run_monitord("star-switch:4", "record:" + trace, 6, options);
  ASSERT_EQ(live.failures, 0u);
  // Replaying MORE cycles than were recorded must degrade into counted
  // probe failures (strict replay: unknown experiment => error result).
  const auto over = run_monitord("star-switch:4", "replay:" + trace, 9, options);
  EXPECT_EQ(over.measurements, live.measurements);
  EXPECT_GT(over.failures, 0u);
  std::remove(trace.c_str());
}

// The acceptance scenario: a fault: scale rule shifts one pair's
// bandwidth mid-run; the daemon detects the forecast drift and re-maps
// only that pair's segment, at a probe cost well under a full re-map.
//
// dumbbell:3x3 schedules 3 probes per cycle, one per clique in plan
// order — index 1 of every cycle is clique-2 (segment router-right.lan).
// The fault engine counts bandwidth experiments 0-based in canonical
// order, so bw#61 is exactly cycle 20's right-LAN probe. That pair was
// visited at cycles 2, 8 and 14 (6-pair rotation), so its drift window
// holds two zero-error samples when the scaled value lands — with the
// test policy (threshold 0.2, window 4, min 2) one sustained-shift
// observation on a warmed-up pair trips the detector at cycle 21.
monitor::MonitorOptions drift_test_options() {
  monitor::MonitorOptions options;
  options.drift.relative_error_threshold = 0.2;
  options.drift.window = 4;
  options.drift.min_samples = 2;
  options.drift.cooldown_cycles = 30;
  return options;
}

TEST(MonitordDrift, ScaleFaultTriggersIncrementalRemapOfAffectedSegmentOnly) {
  const auto run =
      run_monitord("dumbbell:3x3", "fault:bw#61=scale:0.35@sim", 30, drift_test_options());

  // Exactly one incremental re-map, of the drifting segment only.
  EXPECT_EQ(run.remaps, 1u);
  std::vector<std::string> drift_segments;
  std::vector<std::string> remap_segments;
  for (const auto& event : run.events) {
    if (event.kind == monitor::MonitorEvent::Kind::drift_detected) {
      drift_segments.push_back(event.segment);
      EXPECT_EQ(event.cycle, 21u);
    }
    if (event.kind == monitor::MonitorEvent::Kind::remap_started ||
        event.kind == monitor::MonitorEvent::Kind::remap_finished) {
      remap_segments.push_back(event.segment);
    }
  }
  ASSERT_EQ(drift_segments.size(), 1u);
  EXPECT_EQ(drift_segments[0], "router-right.lan");
  ASSERT_EQ(remap_segments.size(), 2u);  // started + finished
  EXPECT_EQ(remap_segments[0], "router-right.lan");
  EXPECT_EQ(remap_segments[1], "router-right.lan");

  // Decision log: one remap decision, against the right segment, and no
  // decisions about any other segment ever.
  ASSERT_FALSE(run.decisions.empty());
  std::size_t remap_decisions = 0;
  for (const auto& line : run.decisions) {
    EXPECT_NE(line.find("segment=router-right.lan"), std::string::npos) << line;
    if (line.find("action=remap") != std::string::npos) ++remap_decisions;
  }
  EXPECT_EQ(remap_decisions, 1u);

  // The point of being incremental: re-probing the 3-host right LAN
  // costs a fraction of the 8-host full map (23 experiments for this
  // scenario).
  EXPECT_GT(run.remap_experiments, 0u);
  EXPECT_LT(run.remap_experiments, run.map_experiments);

  // The published snapshot carries the re-map accounting, and the
  // re-mapped segment is no longer drifting (learning was reset).
  EXPECT_NE(run.render.find("remaps 1"), std::string::npos);
  EXPECT_NE(run.render.find("drifting\n"), std::string::npos);
}

TEST(MonitordDrift, DriftDecisionsAreDeterministicAcrossRuns) {
  const auto one =
      run_monitord("dumbbell:3x3", "fault:bw#61=scale:0.35@sim", 30, drift_test_options());
  const auto two =
      run_monitord("dumbbell:3x3", "fault:bw#61=scale:0.35@sim", 30, drift_test_options());
  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.render, two.render);
  EXPECT_EQ(one.decisions, two.decisions);
  EXPECT_EQ(one.remap_experiments, two.remap_experiments);
  ASSERT_EQ(one.events.size(), two.events.size());
  for (std::size_t i = 0; i < one.events.size(); ++i) {
    EXPECT_EQ(one.events[i].kind, two.events[i].kind);
    EXPECT_EQ(one.events[i].cycle, two.events[i].cycle);
    EXPECT_EQ(one.events[i].segment, two.events[i].segment);
  }
}

TEST(MonitordDrift, ObserveOnlyModeDetectsButNeverRemaps) {
  auto options = drift_test_options();
  options.remap_on_drift = false;
  const auto run = run_monitord("dumbbell:3x3", "fault:bw#61=scale:0.35@sim", 30, options);
  EXPECT_EQ(run.remaps, 0u);
  EXPECT_EQ(run.remap_experiments, 0u);
  bool detected = false;
  for (const auto& event : run.events) {
    EXPECT_NE(event.kind, monitor::MonitorEvent::Kind::remap_started);
    if (event.kind == monitor::MonitorEvent::Kind::drift_detected) detected = true;
  }
  EXPECT_TRUE(detected);
  // The drifting segment shows up in the published snapshot.
  EXPECT_NE(run.render.find("drifting router-right.lan"), std::string::npos);
}

TEST(MonitordPersistence, DumpRestoreRoundTripsAcrossDaemons) {
  const auto scenario = make_scenario("star-switch:4");
  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  ASSERT_TRUE(session.plan().ok());
  auto made = session.make_monitor({});
  ASSERT_TRUE(made.ok());
  auto daemon = std::move(made.value());
  ASSERT_TRUE(daemon->run_cycles(10).ok());
  const std::string dump = daemon->dump_series();
  ASSERT_FALSE(dump.empty());

  // A fresh daemon restores the history and reports the same store
  // contents pair for pair.
  simnet::Network net2(simnet::Scenario(scenario).topology);
  Session session2(net2, scenario);
  ASSERT_TRUE(session2.plan().ok());
  auto made2 = session2.make_monitor({});
  ASSERT_TRUE(made2.ok());
  auto restored = std::move(made2.value());
  ASSERT_TRUE(restored->restore_series(dump).ok());
  EXPECT_EQ(restored->dump_series(), dump);
}

}  // namespace
}  // namespace envnws
