// Unit coverage of the monitor building blocks: virtual clock, cycle
// scheduler, drift tracker, sharded series store, immutable snapshots —
// everything the daemon composes, tested without any daemon or socket.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "deploy/plan.hpp"
#include "monitor/drift.hpp"
#include "monitor/schedule.hpp"
#include "monitor/snapshot.hpp"
#include "monitor/store.hpp"
#include "nws/clique.hpp"
#include "nws/series.hpp"

namespace envnws::monitor {
namespace {

nws::SeriesKey bw_key(const std::string& src, const std::string& dst) {
  return nws::SeriesKey{nws::ResourceKind::bandwidth, src, dst};
}

// --- clock ------------------------------------------------------------------

TEST(MonitorClock, TimeIsExactlyPeriodTimesCycles) {
  MonitorClock clock(2.5);
  EXPECT_EQ(clock.cycles(), 0u);
  EXPECT_EQ(clock.now(), 0.0);
  for (int i = 1; i <= 10; ++i) {
    clock.tick();
    EXPECT_EQ(clock.cycles(), static_cast<std::uint64_t>(i));
    // Multiplication, not accumulation: no floating-point drift, so a
    // snapshot digest depends only on the cycle count.
    EXPECT_EQ(clock.now(), 2.5 * i);
  }
}

// --- scheduler --------------------------------------------------------------

deploy::DeploymentPlan two_clique_plan() {
  deploy::DeploymentPlan plan;
  plan.master = "a";
  plan.hosts = {"a", "b", "c", "x", "y"};
  deploy::PlannedClique lan;
  lan.name = "clique-1-lan";
  lan.role = deploy::CliqueRole::switched_all;
  lan.members = {"a", "b", "c"};
  lan.network_label = "lan";
  deploy::PlannedClique inter;
  inter.name = "clique-2-inter";
  inter.role = deploy::CliqueRole::inter;
  inter.members = {"x", "y"};
  inter.network_label = "wan";
  plan.cliques = {lan, inter};
  return plan;
}

TEST(CycleScheduler, RotatesRoundRobinThroughOrderedPairs) {
  const auto plan = two_clique_plan();
  CycleScheduler scheduler(plan);
  // 3 members -> 6 ordered pairs; 2 members -> 2 ordered pairs.
  EXPECT_EQ(scheduler.pairs_total(), 8u);
  EXPECT_EQ(scheduler.probes_per_cycle(), 2u);  // one token per clique
  EXPECT_EQ(scheduler.full_sweep_cycles(), 6u);

  // Every pair of every clique is visited exactly once per sweep, and
  // the schedule is a pure function of the cycle index.
  std::set<std::string> lan_pairs;
  std::set<std::string> wan_pairs;
  for (std::uint64_t k = 0; k < scheduler.full_sweep_cycles(); ++k) {
    const auto probes = scheduler.cycle(k);
    ASSERT_EQ(probes.size(), 2u);
    EXPECT_EQ(probes[0].clique, "clique-1-lan");
    EXPECT_EQ(probes[0].segment, "lan");
    EXPECT_EQ(probes[1].segment, "wan");
    lan_pairs.insert(probes[0].transfer.from + ">" + probes[0].transfer.to);
    wan_pairs.insert(probes[1].transfer.from + ">" + probes[1].transfer.to);
    const auto again = scheduler.cycle(k);
    EXPECT_EQ(again[0].transfer.from, probes[0].transfer.from);
    EXPECT_EQ(again[0].transfer.to, probes[0].transfer.to);
  }
  EXPECT_EQ(lan_pairs.size(), 6u);
  EXPECT_EQ(wan_pairs.size(), 2u);
}

TEST(CycleScheduler, ParallelTokensMultiplyTheRefreshRate) {
  auto plan = two_clique_plan();
  plan.cliques[0].parallel_tokens = 3;
  plan.cliques.pop_back();  // lan clique only
  CycleScheduler scheduler(plan);
  EXPECT_EQ(scheduler.probes_per_cycle(), 3u);
  EXPECT_EQ(scheduler.full_sweep_cycles(), 2u);  // ceil(6 / 3)
  // Tokens are clamped to the pair count: 99 tokens over 6 pairs is 6.
  plan.cliques[0].parallel_tokens = 99;
  CycleScheduler clamped(plan);
  EXPECT_EQ(clamped.probes_per_cycle(), 6u);
  EXPECT_EQ(clamped.full_sweep_cycles(), 1u);
}

TEST(CycleScheduler, SingleMemberCliquesScheduleNothing) {
  deploy::DeploymentPlan plan;
  plan.master = "solo";
  deploy::PlannedClique lonely;
  lonely.name = "clique-1-solo";
  lonely.members = {"solo"};
  plan.cliques = {lonely};
  CycleScheduler scheduler(plan);
  EXPECT_EQ(scheduler.probes_per_cycle(), 0u);
  EXPECT_TRUE(scheduler.cycle(0).empty());
}

TEST(OrderedExperimentPairs, MatchCliqueSemantics) {
  const std::vector<std::string> members = {"a", "b", "c"};
  const auto pairs = nws::ordered_experiment_pairs(members);
  ASSERT_EQ(pairs.size(), 6u);
  for (const auto& [from, to] : pairs) EXPECT_NE(from, to);
}

// --- drift ------------------------------------------------------------------

TEST(DriftTracker, NeedsMinSamplesAndSustainedError) {
  DriftPolicy policy;  // threshold 0.30, window 8, min_samples 4
  DriftTracker tracker(policy.window);
  // Perfect forecasts: never drifting.
  for (int i = 0; i < 10; ++i) tracker.observe(100.0, 100.0);
  EXPECT_EQ(tracker.relative_mae(), 0.0);
  EXPECT_FALSE(tracker.drifting(policy));

  // One wild outlier inside a window of good forecasts: 2.0/8 = 0.25,
  // below threshold — a single bad measurement is not drift.
  tracker.observe(300.0, 100.0);
  EXPECT_FALSE(tracker.drifting(policy));

  // A sustained shift is: errors of 1.0 fill the window.
  for (int i = 0; i < 8; ++i) tracker.observe(200.0, 100.0);
  EXPECT_NEAR(tracker.relative_mae(), 1.0, 1e-12);
  EXPECT_TRUE(tracker.drifting(policy));

  tracker.reset();
  EXPECT_EQ(tracker.samples(), 0u);
  EXPECT_FALSE(tracker.drifting(policy));
  // Fresh trackers never drift before min_samples even on huge errors.
  tracker.observe(500.0, 100.0);
  tracker.observe(500.0, 100.0);
  EXPECT_FALSE(tracker.drifting(policy));
}

TEST(DriftTracker, RelativeErrorIsScaleFree) {
  DriftTracker lan(4);
  DriftTracker wan(4);
  for (int i = 0; i < 4; ++i) {
    lan.observe(1.3e8, 1.0e8);  // 100 Mbit/s off by 30%
    wan.observe(2.6e6, 2.0e6);  // 2 Mbit/s off by 30%
  }
  EXPECT_NEAR(lan.relative_mae(), wan.relative_mae(), 1e-12);
}

// --- store ------------------------------------------------------------------

TEST(SeriesShardStore, RecordIsForecastThenObserve) {
  SeriesShardStore store(4, 64, DriftPolicy{});
  const auto key = bw_key("a", "b");
  // First observation: no forecast existed yet.
  auto first = store.record(key, 1.0, 100.0);
  EXPECT_FALSE(first.had_forecast);
  // Second: the forecast (trained on 100) meets the new value.
  auto second = store.record(key, 2.0, 100.0);
  EXPECT_TRUE(second.had_forecast);
  EXPECT_EQ(second.predicted, 100.0);
  EXPECT_EQ(second.relative_error, 0.0);
  // A shifted value scores the PRE-observation forecast against it.
  auto shifted = store.record(key, 3.0, 50.0);
  EXPECT_TRUE(shifted.had_forecast);
  EXPECT_EQ(shifted.predicted, 100.0);
  EXPECT_GT(shifted.relative_error, 0.0);
}

TEST(SeriesShardStore, ShardAssignmentIsStableAndCollectIsCanonical) {
  // shard_of is FNV-based, not std::hash: the same key lands on the same
  // shard on every platform and in every process.
  const auto key = bw_key("h3.lan", "h1.lan");
  const std::size_t shard = SeriesShardStore::shard_of(key, 8);
  EXPECT_LT(shard, 8u);
  EXPECT_EQ(SeriesShardStore::shard_of(key, 8), shard);

  // collect() is sorted by key no matter how keys spread over shards.
  SeriesShardStore store(8, 64, DriftPolicy{});
  const std::vector<std::string> hosts = {"h0", "h1", "h2", "h3", "h4"};
  for (const auto& src : hosts) {
    for (const auto& dst : hosts) {
      if (src != dst) store.record(bw_key(src, dst), 1.0, 5.0e8);
    }
  }
  const auto states = store.collect();
  ASSERT_EQ(states.size(), 20u);
  for (std::size_t i = 1; i < states.size(); ++i) {
    EXPECT_TRUE(states[i - 1].key < states[i].key);
  }
  EXPECT_EQ(store.stored(), 20u);
}

TEST(SeriesShardStore, SeriesReturnsMostRecentPointsBounded) {
  SeriesShardStore store(2, 128, DriftPolicy{});
  const auto key = bw_key("a", "b");
  for (int i = 1; i <= 10; ++i) store.record(key, i, 100.0 + i);
  const auto all = store.series(key, 0);
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all.front().time, 1.0);
  const auto tail = store.series(key, 3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().time, 8.0);
  EXPECT_EQ(tail.back().time, 10.0);
  EXPECT_TRUE(store.series(bw_key("no", "pair"), 0).empty());
}

TEST(SeriesShardStore, DriftingKeysAndResetLearning) {
  DriftPolicy policy;
  policy.relative_error_threshold = 0.2;
  policy.window = 4;
  policy.min_samples = 2;
  SeriesShardStore store(4, 64, policy);
  const auto steady = bw_key("a", "b");
  const auto shifty = bw_key("c", "d");
  for (int i = 0; i < 6; ++i) {
    store.record(steady, i, 100.0);
    store.record(shifty, i, i % 2 == 0 ? 100.0 : 400.0);  // oscillates
  }
  const auto drifting = store.drifting();
  ASSERT_EQ(drifting.size(), 1u);
  EXPECT_TRUE(drifting[0] == shifty);

  store.reset_learning({shifty});
  EXPECT_TRUE(store.drifting().empty());
  // History survives a learning reset; only the verdict state forgets.
  EXPECT_EQ(store.series(shifty, 0).size(), 6u);
}

TEST(SeriesShardStore, DumpRestoreRewarmsForecasters) {
  SeriesShardStore store(4, 64, DriftPolicy{});
  for (int i = 1; i <= 8; ++i) {
    store.record(bw_key("a", "b"), i, 1.0e8 + i * 100.0);
    store.record(bw_key("b", "a"), i, 2.0e8);
  }
  const std::string dump = store.dump();
  ASSERT_FALSE(dump.empty());

  SeriesShardStore restored(4, 64, DriftPolicy{});
  ASSERT_TRUE(restored.restore(dump).ok());
  EXPECT_EQ(restored.stored(), store.stored());
  // restore() routes every point through record(): the restored
  // forecasters predict exactly what the live ones do.
  const auto live = store.collect();
  const auto warm = restored.collect();
  ASSERT_EQ(warm.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_TRUE(warm[i].key == live[i].key);
    EXPECT_EQ(warm[i].forecast.value, live[i].forecast.value);
    EXPECT_EQ(warm[i].forecast.winner, live[i].forecast.winner);
    EXPECT_EQ(warm[i].forecast.samples, live[i].forecast.samples);
  }
  // And the dump grammar round-trips bit-identically.
  EXPECT_EQ(restored.dump(), dump);
}

TEST(SeriesShardStore, RestoreRejectsMalformedDumps) {
  SeriesShardStore store(2, 16, DriftPolicy{});
  EXPECT_FALSE(store.restore("series bandwidth a\n").ok());          // short header
  EXPECT_FALSE(store.restore("series warp a b\n1 2\n").ok());        // unknown resource
  EXPECT_FALSE(store.restore("1.0 2.0\n").ok());                     // point before header
  EXPECT_FALSE(store.restore("series cpu a -\nnot numbers\n").ok()); // junk point
  EXPECT_TRUE(store.restore("# empty dump\n").ok());
}

// --- snapshots --------------------------------------------------------------

TEST(MonitorSnapshot, DigestIsStableAndCoversEveryObservable) {
  SeriesShardStore store(4, 64, DriftPolicy{});
  store.record(bw_key("a", "b"), 1.0, 1.0e8);
  store.record(bw_key("b", "a"), 1.0, 2.0e8);

  const auto one = build_snapshot(store, 1, 5, 5.0, 10, 1, 0, 0, {"lan"});
  const auto two = build_snapshot(store, 1, 5, 5.0, 10, 1, 0, 0, {"lan"});
  EXPECT_EQ(one->digest(), two->digest());
  EXPECT_EQ(one->render(), two->render());

  // Any observable difference moves the digest.
  const auto other_version = build_snapshot(store, 2, 5, 5.0, 10, 1, 0, 0, {"lan"});
  EXPECT_NE(other_version->digest(), one->digest());
  const auto other_counts = build_snapshot(store, 1, 5, 5.0, 11, 1, 0, 0, {"lan"});
  EXPECT_NE(other_counts->digest(), one->digest());
  store.record(bw_key("a", "b"), 2.0, 1.1e8);
  const auto other_data = build_snapshot(store, 1, 5, 5.0, 10, 1, 0, 0, {"lan"});
  EXPECT_NE(other_data->digest(), one->digest());

  // Drifting segments are sorted + deduplicated before digesting.
  const auto messy = build_snapshot(store, 3, 5, 5.0, 10, 1, 0, 0, {"z", "a", "z"});
  ASSERT_EQ(messy->drifting_segments.size(), 2u);
  EXPECT_EQ(messy->drifting_segments[0], "a");
  EXPECT_EQ(messy->drifting_segments[1], "z");
}

TEST(MonitorSnapshot, FindBinarySearchesByKey) {
  SeriesShardStore store(4, 64, DriftPolicy{});
  store.record(bw_key("a", "b"), 1.0, 1.0e8);
  store.record(bw_key("c", "d"), 1.0, 3.0e8);
  const auto snapshot = build_snapshot(store, 1, 1, 1.0, 2, 0, 0, 0, {});
  ASSERT_EQ(snapshot->pairs.size(), 2u);
  const PairReading* hit = snapshot->find(bw_key("c", "d"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->value, 3.0e8);
  EXPECT_EQ(snapshot->find(bw_key("x", "y")), nullptr);
}

TEST(SnapshotBoard, BootsNonNullAndPublishSwapsAtomically) {
  SnapshotBoard board;
  const auto boot = board.current();
  ASSERT_NE(boot, nullptr);
  EXPECT_EQ(boot->version, 0u);

  SeriesShardStore store(1, 8, DriftPolicy{});
  store.record(bw_key("a", "b"), 1.0, 5.0e7);
  board.publish(build_snapshot(store, 1, 1, 1.0, 1, 0, 0, 0, {}));
  EXPECT_EQ(board.current()->version, 1u);
  // Old readers keep their snapshot alive through the shared_ptr.
  EXPECT_EQ(boot->version, 0u);
  // Null publications are ignored: readers never need a null check.
  board.publish(nullptr);
  EXPECT_EQ(board.current()->version, 1u);
}

// --- naming -----------------------------------------------------------------

TEST(ResourceNames, RoundTripThroughResourceFromString) {
  for (const auto kind :
       {nws::ResourceKind::bandwidth, nws::ResourceKind::latency, nws::ResourceKind::connect_time,
        nws::ResourceKind::cpu, nws::ResourceKind::memory, nws::ResourceKind::disk}) {
    auto parsed = nws::resource_from_string(nws::to_string(kind));
    ASSERT_TRUE(parsed.ok()) << nws::to_string(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
  auto bad = nws::resource_from_string("warp-capacity");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::protocol);
}

}  // namespace
}  // namespace envnws::monitor
