// Boundary semantics of the ENV refinement rules, tested against a
// scripted ProbeEngine (no simulator): the thresholds compare with the
// exact inequalities of paper §4.2.2 — split when ratio EXCEEDS 3;
// independent when ratio is BELOW 1.25; shared when average is BELOW
// 0.7; switched when ABOVE 0.9; in between, inconclusive.
#include <gtest/gtest.h>

#include <map>

#include "common/units.hpp"
#include "env/mapper.hpp"

namespace envnws::env {
namespace {

using units::mbps;

/// Fully scripted observation source. Hosts are flat on one LAN (every
/// traceroute goes straight to the target); bandwidths are read from
/// tables keyed by (from, to) pairs, with an optional concurrent factor.
class ScriptedEngine final : public ProbeEngine {
 public:
  std::map<std::string, HostIdentity> identities;
  std::map<std::pair<std::string, std::string>, double> solo_bw;
  /// Multiplier applied to a transfer when it runs concurrently with
  /// another one (per unordered pair of *pairs*, keyed by the two "to"
  /// hosts for master-sourced transfers; fallback factor otherwise).
  double concurrent_factor = 1.0;
  /// Multiplier observed by the measured transfer during a jam test.
  double jam_factor = 1.0;
  std::string target = "root";

  Result<HostIdentity> lookup(const std::string& hostname) override {
    const auto it = identities.find(hostname);
    if (it == identities.end()) {
      return make_error(ErrorCode::not_found, "unknown " + hostname);
    }
    return it->second;
  }

  Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                           const std::string& to) override {
    (void)from;
    (void)to;
    return std::vector<TraceHop>{TraceHop{"10.0.0.254", target, true}};
  }

  Result<double> bandwidth(const std::string& from, const std::string& to) override {
    const auto it = solo_bw.find({from, to});
    if (it == solo_bw.end()) {
      return make_error(ErrorCode::unreachable, from + "->" + to + " unscripted");
    }
    ++experiments_;
    return it->second;
  }

  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) override {
    std::vector<Result<double>> out;
    // Two master-sourced transfers = the pairwise test; a master-sourced
    // plus a member-sourced transfer = the jam test.
    const bool is_pairwise =
        requests.size() == 2 && requests[0].from == requests[1].from;
    for (const auto& request : requests) {
      auto solo = bandwidth(request.from, request.to);
      if (!solo.ok()) {
        out.push_back(solo);
        continue;
      }
      out.push_back(solo.value() * (is_pairwise ? concurrent_factor : jam_factor));
    }
    return out;
  }

  [[nodiscard]] ProbeStats stats() const override {
    return ProbeStats{experiments_, 0, static_cast<double>(experiments_)};
  }

 private:
  std::uint64_t experiments_ = 0;
};

ScriptedEngine flat_lan(int members, double bw) {
  ScriptedEngine engine;
  engine.identities["master"] = HostIdentity{"master.lan", "10.0.0.1", {}};
  engine.solo_bw[{"master", "master"}] = bw;
  std::vector<std::string> names{"master"};
  for (int i = 0; i < members; ++i) {
    const std::string name = "h" + std::to_string(i);
    engine.identities[name] =
        HostIdentity{name + ".lan", "10.0.0." + std::to_string(10 + i), {}};
    names.push_back(name);
  }
  for (const auto& a : names) {
    for (const auto& b : names) {
      if (a != b) engine.solo_bw[{a, b}] = bw;
    }
  }
  return engine;
}

ZoneSpec flat_spec(int members) {
  ZoneSpec spec;
  spec.zone_name = "lan";
  spec.hostnames = {"master"};
  for (int i = 0; i < members; ++i) spec.hostnames.push_back("h" + std::to_string(i));
  spec.master = "master";
  spec.traceroute_target = "master";
  return spec;
}

NetKind classify_with_jam_factor(double jam_factor, MapperOptions options = {}) {
  ScriptedEngine engine = flat_lan(3, mbps(100));
  engine.concurrent_factor = 0.5;  // dependent: stay together
  engine.jam_factor = jam_factor;
  Mapper mapper(engine, options);
  auto result = mapper.map_zone(flat_spec(3));
  EXPECT_TRUE(result.ok());
  const auto segments = result.value().root.lan_segments();
  EXPECT_EQ(segments.size(), 1u);
  return segments.empty() ? NetKind::structural : segments[0]->kind;
}

TEST(ScriptedThresholds, JamBandBoundaries) {
  // avg < 0.7 -> shared (strict).
  EXPECT_EQ(classify_with_jam_factor(0.69), NetKind::shared);
  EXPECT_EQ(classify_with_jam_factor(0.70), NetKind::inconclusive);  // not < 0.7
  // between 0.7 and 0.9 -> inconclusive ("data gathering stops").
  EXPECT_EQ(classify_with_jam_factor(0.80), NetKind::inconclusive);
  EXPECT_EQ(classify_with_jam_factor(0.90), NetKind::inconclusive);  // not > 0.9
  // avg > 0.9 -> switched (strict).
  EXPECT_EQ(classify_with_jam_factor(0.91), NetKind::switched);
}

TEST(ScriptedThresholds, BandwidthSplitAtExactlyThree) {
  // Two hosts at 100, one at exactly 100/3: ratio == 3.0 does NOT exceed
  // the threshold; slightly below does.
  for (const double slow_bw : {mbps(100) / 3.0, mbps(33.0)}) {
    ScriptedEngine engine = flat_lan(3, mbps(100));
    engine.concurrent_factor = 0.5;
    engine.jam_factor = 0.5;
    for (const auto& other : {"master", "h0", "h1"}) {
      engine.solo_bw[{other, "h2"}] = slow_bw;
      engine.solo_bw[{"h2", other}] = slow_bw;
    }
    Mapper mapper(engine, MapperOptions{});
    auto result = mapper.map_zone(flat_spec(3));
    ASSERT_TRUE(result.ok());
    const auto segments = result.value().root.lan_segments();
    if (slow_bw >= mbps(100) / 3.0) {
      // ratio == 3.0: kept together (the rule is "exceeds").
      ASSERT_EQ(segments.size(), 1u);
      EXPECT_EQ(segments[0]->machines.size(), 4u);
    } else {
      // ratio ~3.03: split into the fast cluster and a lone machine.
      EXPECT_GE(result.value().root.children.size(), 2u);
    }
  }
}

TEST(ScriptedThresholds, PairwiseIndependenceSplits) {
  // concurrent_factor 1.0 -> paired bandwidth unchanged -> ratio 1.0
  // < 1.25 -> all members independent -> every cluster dissolves.
  ScriptedEngine engine = flat_lan(3, mbps(100));
  engine.concurrent_factor = 1.0;
  engine.jam_factor = 1.0;
  Mapper mapper(engine, MapperOptions{});
  auto result = mapper.map_zone(flat_spec(3));
  ASSERT_TRUE(result.ok());
  // Three singletons (plus the master riding along with one of them).
  for (const auto* segment : result.value().root.lan_segments()) {
    EXPECT_LE(segment->machines.size(), 2u);
  }
}

TEST(ScriptedThresholds, PairwiseDependenceAtExactThreshold) {
  // ratio exactly 1.25 satisfies ">= threshold": dependent, no split.
  ScriptedEngine engine = flat_lan(3, mbps(100));
  engine.concurrent_factor = 1.0 / 1.25;
  engine.jam_factor = 0.5;
  Mapper mapper(engine, MapperOptions{});
  auto result = mapper.map_zone(flat_spec(3));
  ASSERT_TRUE(result.ok());
  const auto segments = result.value().root.lan_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0]->machines.size(), 4u);
  EXPECT_EQ(segments[0]->kind, NetKind::shared);
}

TEST(ScriptedThresholds, JamRepetitionCountHonored) {
  for (const int reps : {1, 5, 9}) {
    ScriptedEngine engine = flat_lan(3, mbps(100));
    engine.concurrent_factor = 0.5;
    engine.jam_factor = 0.5;
    MapperOptions options;
    options.jam_repetitions = reps;
    Mapper mapper(engine, options);
    const auto before = engine.stats().experiments;
    auto result = mapper.map_zone(flat_spec(3));
    ASSERT_TRUE(result.ok());
    // Host bw: 3; pairwise: 3 pairs x 2 transfers; internal: 3;
    // jam: reps x 2 transfers.
    EXPECT_EQ(engine.stats().experiments - before,
              3u + 6u + 3u + static_cast<std::uint64_t>(2 * reps));
  }
}

TEST(ScriptedThresholds, UnreachableMemberProducesWarningNotCrash) {
  ScriptedEngine engine = flat_lan(2, mbps(100));
  engine.concurrent_factor = 0.5;
  engine.jam_factor = 0.5;
  engine.solo_bw.erase({"master", "h1"});  // probe will fail
  Mapper mapper(engine, MapperOptions{});
  auto result = mapper.map_zone(flat_spec(2));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().warnings.empty());
}

}  // namespace
}  // namespace envnws::env
