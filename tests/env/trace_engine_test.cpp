// The probe-trace subsystem: record/replay round-trips at the engine
// level, strict-mode violations (divergence, exhaustion), lenient
// fallback, fault-injection rules — and the golden-trace regression
// suite: replaying the committed traces under tests/data/traces/ must
// reproduce the live simulator MapResult bit-for-bit with ZERO simulator
// probes executed. A golden failure here usually means the mapper's
// probe schedule changed; see docs/TESTING.md for the re-record workflow
// (examples/record_trace).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "env/env_tree.hpp"
#include "env/fault_probe_engine.hpp"
#include "env/trace_probe_engine.hpp"

namespace envnws::env {
namespace {

namespace fs = std::filesystem;

const fs::path kTraceDir = fs::path(ENVNWS_TEST_DATA_DIR) / "traces";

/// Deterministic canned observation source for engine-level tests;
/// exercises the awkward serialization corners (empty fqdn, spaces in
/// property values, failed hops, scripted errors).
class CannedEngine final : public ProbeEngine {
 public:
  Result<HostIdentity> lookup(const std::string& hostname) override {
    ++calls_;
    if (hostname == "missing") {
      return make_error(ErrorCode::not_found, "no DNS entry for " + hostname);
    }
    HostIdentity identity;
    identity.fqdn = hostname == "bare" ? "" : hostname + ".lab";
    identity.ip = "10.1.0." + std::to_string(calls_);
    identity.properties["os"] = "Debian GNU/Linux 12 (bookworm)";
    return identity;
  }
  Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                           const std::string& target) override {
    ++calls_;
    if (from == "dead") return make_error(ErrorCode::host_down, from + " is off");
    (void)target;
    return std::vector<TraceHop>{TraceHop{"10.1.0.254", "gw.lab", true}, TraceHop{"*", "", false}};
  }
  Result<double> bandwidth(const std::string& from, const std::string& to) override {
    ++calls_;
    if (to == "unreachable") return make_error(ErrorCode::unreachable, from + " -/-> " + to);
    return 1.0e6 * static_cast<double>(calls_) + 0.125;
  }
  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) override {
    ++calls_;
    std::vector<Result<double>> out;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].from == "dead") {
        out.push_back(make_error(ErrorCode::host_down, "dead is off"));
      } else {
        out.push_back(5.0e5 * static_cast<double>(calls_) + static_cast<double>(i));
      }
    }
    return out;
  }
  [[nodiscard]] ProbeStats stats() const override {
    return ProbeStats{calls_, static_cast<std::int64_t>(calls_) * 10,
                      0.5 * static_cast<double>(calls_)};
  }

 private:
  std::uint64_t calls_ = 0;
};

/// Drive a fixed request sequence and collect printable outcomes.
std::vector<std::string> drive(ProbeEngine& engine) {
  std::vector<std::string> log;
  const auto render = [&log](const Result<double>& r) {
    log.push_back(r.ok() ? std::to_string(r.value()) : r.error().to_string());
  };
  auto id = engine.lookup("alpha");
  log.push_back(id.ok() ? id.value().fqdn + "|" + id.value().ip + "|" +
                              id.value().properties.at("os")
                        : id.error().to_string());
  auto bare = engine.lookup("bare");
  log.push_back(bare.ok() ? "fqdn:'" + bare.value().fqdn + "'" : bare.error().to_string());
  auto miss = engine.lookup("missing");
  log.push_back(miss.ok() ? miss.value().fqdn : miss.error().to_string());
  auto hops = engine.traceroute("alpha", "gw");
  if (hops.ok()) {
    for (const auto& hop : hops.value()) {
      log.push_back(hop.ip + "/" + hop.name + "/" + (hop.responded ? "up" : "down"));
    }
  } else {
    log.push_back(hops.error().to_string());
  }
  render(engine.bandwidth("alpha", "beta"));
  render(engine.bandwidth("alpha", "unreachable"));
  for (const auto& r : engine.concurrent_bandwidth(
           {BandwidthRequest{"alpha", "beta"}, BandwidthRequest{"dead", "beta"}})) {
    render(r);
  }
  const ProbeStats stats = engine.stats();
  log.push_back(std::to_string(stats.experiments) + "/" + std::to_string(stats.bytes_sent) + "/" +
                std::to_string(stats.busy_time_s));
  return log;
}

TEST(TraceEngine, RecordSerializeParseReplayRoundTrips) {
  RecordingProbeEngine recorder(std::make_unique<CannedEngine>());
  const std::vector<std::string> live = drive(recorder);
  ASSERT_EQ(recorder.trace().records.size(), 7u);  // 3 lookups, 1 traceroute, 2 bw, 1 cbw
  const std::string text = recorder.trace().to_string();

  auto parsed = ProbeTrace::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().to_string(), text);  // serialize/parse is a fixpoint

  TraceProbeEngine replay(std::move(parsed.value()));
  EXPECT_EQ(drive(replay), live);
  EXPECT_FALSE(replay.violation().has_value());
}

TEST(TraceEngine, StrictReplayDivergenceIsStickyAndReported) {
  RecordingProbeEngine recorder(std::make_unique<CannedEngine>());
  (void)recorder.bandwidth("alpha", "beta");
  (void)recorder.bandwidth("alpha", "gamma");

  std::string reported;
  TraceProbeEngine replay(recorder.trace());
  replay.set_violation_handler([&reported](const Error& error) { reported = error.message; });

  ASSERT_TRUE(replay.bandwidth("alpha", "beta").ok());
  // Wrong endpoints: strict mode refuses and the violation sticks.
  auto diverged = replay.bandwidth("alpha", "DELTA");
  ASSERT_FALSE(diverged.ok());
  EXPECT_EQ(diverged.error().code, ErrorCode::protocol);
  EXPECT_NE(diverged.error().message.find("diverged at experiment 1"), std::string::npos)
      << diverged.error().message;
  EXPECT_EQ(reported, diverged.error().message);
  // Even the request the trace DOES hold now reports the first violation.
  auto after = replay.bandwidth("alpha", "gamma");
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.error().message, diverged.error().message);
  ASSERT_TRUE(replay.violation().has_value());
}

TEST(TraceEngine, StrictReplayExhaustionNamesTheExperimentIndex) {
  RecordingProbeEngine recorder(std::make_unique<CannedEngine>());
  (void)recorder.bandwidth("alpha", "beta");

  TraceProbeEngine replay(recorder.trace());
  ASSERT_TRUE(replay.bandwidth("alpha", "beta").ok());
  auto exhausted = replay.bandwidth("alpha", "beta");
  ASSERT_FALSE(exhausted.ok());
  EXPECT_NE(exhausted.error().message.find("exhausted at experiment 1"), std::string::npos)
      << exhausted.error().message;
}

TEST(TraceEngine, LenientReplayFallsBackToTheDelegate) {
  RecordingProbeEngine recorder(std::make_unique<CannedEngine>());
  (void)recorder.bandwidth("alpha", "beta");

  TraceProbeEngine replay(recorder.trace(), TraceProbeEngine::Mode::lenient,
                          std::make_unique<CannedEngine>());
  // Out-of-trace request: served by the delegate, cursor does not move.
  EXPECT_TRUE(replay.lookup("alpha").ok());
  // The recorded request still replays afterwards.
  auto recorded = replay.bandwidth("alpha", "beta");
  ASSERT_TRUE(recorded.ok());
  EXPECT_EQ(recorded.value(), 1.0e6 + 0.125);
  EXPECT_FALSE(replay.violation().has_value());
}

TEST(TraceEngine, ParseRejectsMalformedDocuments) {
  EXPECT_EQ(ProbeTrace::parse("").error().code, ErrorCode::protocol);
  EXPECT_EQ(ProbeTrace::parse("GARBAGE 9\n").error().code, ErrorCode::protocol);
  // A record without its stats line is a torn write.
  EXPECT_EQ(ProbeTrace::parse("ENVTRACE 1\nB a b ok 1.5\n").error().code, ErrorCode::protocol);
  // Unknown tags and truncated records fail loudly.
  EXPECT_EQ(ProbeTrace::parse("ENVTRACE 1\nX what\nS 1 0 0\n").error().code, ErrorCode::protocol);
  EXPECT_EQ(ProbeTrace::parse("ENVTRACE 1\nB a\nS 1 0 0\n").error().code, ErrorCode::protocol);
  EXPECT_EQ(ProbeTrace::load("/definitely/not/there.envtrace").error().code, ErrorCode::not_found);
  // Comments and blank lines are fine.
  auto ok = ProbeTrace::parse("ENVTRACE 1\n# comment\n\nB a b ok 1.5\nS 1 10 0.5\n");
  ASSERT_TRUE(ok.ok()) << ok.error().to_string();
  EXPECT_EQ(ok.value().records.size(), 1u);
}

TEST(FaultSpecTest, ParsesAndRoundTripsRules) {
  auto spec = FaultSpec::parse("bw#3=fail:timeout, cbw*=scale:0.5,any%7=fail");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  ASSERT_EQ(spec.value().rules.size(), 3u);
  EXPECT_EQ(spec.value().rules[0].to_string(), "bw#3=fail:timeout");
  EXPECT_EQ(spec.value().rules[1].to_string(), "cbw*=scale:0.5");
  EXPECT_EQ(spec.value().rules[2].to_string(), "any%7=fail:timeout");
  auto round = FaultSpec::parse(spec.value().to_string());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().to_string(), spec.value().to_string());
  EXPECT_TRUE(FaultSpec::parse("").value().empty());
}

TEST(FaultSpecTest, RejectsMalformedRules) {
  for (const char* bad : {"bw#3", "bogus#1=fail", "bw=fail", "bw#x=fail", "bw%0=fail",
                          "bw#1=explode", "lookup*=scale:0.5", "bw*=scale:nope",
                          "bw#1=fail:exploded"}) {
    auto spec = FaultSpec::parse(bad);
    ASSERT_FALSE(spec.ok()) << bad;
    EXPECT_EQ(spec.error().code, ErrorCode::invalid_argument) << bad;
  }
}

TEST(FaultSpecTest, RejectsOutOfRangeAndWrappingCounters) {
  // "bw#huge" and beyond-2^64 indices must be parse errors, and "-1"
  // must not wrap to 18446744073709551615 the way bare std::stoull does
  // — none of these may throw out of parse() either.
  for (const char* bad :
       {"bw#huge=fail:timeout", "bw#99999999999999999999999=fail:timeout", "bw#-1=fail",
        "bw%-2=fail", "any#1e3=fail", "cbw*=scale:1e999", "bw*=scale:-0.5"}) {
    auto spec = FaultSpec::parse(bad);
    ASSERT_FALSE(spec.ok()) << bad;
    EXPECT_EQ(spec.error().code, ErrorCode::invalid_argument) << bad;
  }
}

TEST(FaultEngine, FailsAndScalesSelectedExperiments) {
  auto spec = FaultSpec::parse("bw#1=fail:unreachable,cbw*=scale:0.5");
  ASSERT_TRUE(spec.ok());
  FaultInjectingProbeEngine engine(std::make_unique<CannedEngine>(), spec.value());

  EXPECT_TRUE(engine.bandwidth("a", "b").ok());  // bw experiment 0 passes
  auto failed = engine.bandwidth("a", "b");      // bw experiment 1 fails
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::unreachable);
  EXPECT_NE(failed.error().message.find("injected fault"), std::string::npos);
  EXPECT_TRUE(engine.bandwidth("a", "b").ok());  // and only experiment 1

  auto scaled = engine.concurrent_bandwidth({BandwidthRequest{"a", "b"}});
  ASSERT_TRUE(scaled[0].ok());
  // A failed experiment never reaches the inner engine, so the canned
  // reference sequence for the cbw call is bw, bw, cbw (inner call 3).
  CannedEngine reference;
  (void)reference.bandwidth("a", "b");
  (void)reference.bandwidth("a", "b");
  auto raw = reference.concurrent_bandwidth({BandwidthRequest{"a", "b"}});
  EXPECT_DOUBLE_EQ(scaled[0].value(), raw[0].value() * 0.5);
  EXPECT_EQ(engine.injected(), 2u);
}

// --- golden traces ----------------------------------------------------------

struct GoldenFamily {
  const char* spec;
  const char* file;
};

constexpr GoldenFamily kGolden[] = {
    {"dumbbell:3x3@100/10", "dumbbell-3x3.envtrace"},
    {"star-switch:6@100", "star-switch-6.envtrace"},
    {"vlan:4x2", "vlan-4x2.envtrace"},
    {"multi-firewall:2x2", "multi-firewall-2x2.envtrace"},
};

TEST(GoldenTraces, ReplayIsBitIdenticalToTheLiveRunWithZeroProbes) {
  // CI runs this suite once more with ENVNWS_TEST_PROBE_JOBS=8: the
  // batched within-zone schedule must replay the committed traces
  // exactly like the sequential one (canonical experiment order).
  int probe_jobs = 1;
  if (const char* env_jobs = std::getenv("ENVNWS_TEST_PROBE_JOBS")) {
    probe_jobs = std::max(1, std::atoi(env_jobs));
  }
  for (const auto& family : kGolden) {
    SCOPED_TRACE(family.spec);
    const fs::path path = kTraceDir / family.file;
    ASSERT_TRUE(fs::exists(path))
        << "golden trace missing: " << path
        << "\nre-record with: ./build/examples/record_trace " << family.spec << " " << path;

    auto scenario = api::ScenarioRegistry::builtin().make(family.spec);
    ASSERT_TRUE(scenario.ok()) << scenario.error().to_string();

    // The live simulator run...
    simnet::Network live_net(simnet::Scenario(scenario.value()).topology);
    api::Session live(live_net, scenario.value());
    live.options().mapper.probe_jobs = probe_jobs;
    ASSERT_TRUE(live.map().ok());

    // ...and the replay of the committed trace.
    simnet::Network replay_net(simnet::Scenario(scenario.value()).topology);
    api::Session replay(replay_net, scenario.value());
    replay.options().mapper.probe_jobs = probe_jobs;
    ASSERT_TRUE(replay.set_probe_engine_spec("replay:" + path.string()).ok());
    auto status = replay.map();
    ASSERT_TRUE(status.ok()) << status.error().to_string()
                             << "\nThe mapper's probe schedule probably changed; re-record with:"
                             << "\n  ./build/examples/record_trace " << family.spec << " " << path;

    const env::MapResult& a = live.map_result();
    const env::MapResult& b = replay.map_result();
    // A few per-field checks for readable failures first...
    EXPECT_EQ(a.master_fqdn, b.master_fqdn);
    EXPECT_EQ(a.warnings, b.warnings);
    EXPECT_EQ(a.stats.experiments, b.stats.experiments);
    ASSERT_EQ(a.zones.size(), b.zones.size());
    // ...then the single authoritative definition of bit-identity
    // (full-precision stats, grid XML, effective views, per-zone trees).
    EXPECT_EQ(a.identity_digest(), b.identity_digest());

    // Zero simulator probes during replay: the session network never saw
    // env-probe traffic (the trace engine doesn't even touch it).
    const auto& purposes = replay_net.stats().by_purpose;
    EXPECT_EQ(purposes.find("env-probe"), purposes.end());
  }
}

TEST(GoldenTraces, CommittedSocketTraceReplaysDeterministically) {
  // socket-star-6.envtrace was recorded against a REAL loopback agent
  // fleet (./examples/record_trace star-switch:6 <path> --fleet), so
  // there is no live run to compare against here — the contract is that
  // the committed trace replays at all, replays identically, and does it
  // fully offline. This is what makes socket-engine behavior testable in
  // sandboxes without network support.
  const fs::path path = kTraceDir / "socket-star-6.envtrace";
  ASSERT_TRUE(fs::exists(path))
      << "golden socket trace missing: " << path
      << "\nre-record with: ./build/examples/record_trace star-switch:6 " << path << " --fleet";

  auto scenario = api::ScenarioRegistry::builtin().make("star-switch:6");
  ASSERT_TRUE(scenario.ok());

  const auto replay_once = [&](int probe_jobs) {
    simnet::Network net(simnet::Scenario(scenario.value()).topology);
    api::Session session(net, scenario.value());
    // The recording ran with loopback tuning; the replay schedule must
    // match or strict replay rejects the probe stream.
    session.options().mapper.probe_bytes = 64 * 1024;
    session.options().mapper.stabilization_gap_s = 0.0;
    session.options().mapper.probe_jobs = probe_jobs;
    EXPECT_TRUE(session.set_probe_engine_spec("replay:" + path.string()).ok());
    auto status = session.map();
    EXPECT_TRUE(status.ok()) << status.error().to_string()
                             << "\nThe mapper's probe schedule probably changed; re-record with:"
                             << "\n  ./build/examples/record_trace star-switch:6 " << path
                             << " --fleet";
    // Fully offline: the simulator network never carried a probe.
    const auto& purposes = net.stats().by_purpose;
    EXPECT_EQ(purposes.find("env-probe"), purposes.end());
    return session.map_result().identity_digest();
  };

  const std::string sequential = replay_once(1);
  EXPECT_EQ(replay_once(1), sequential);
  // Batched replay measures the same platform (canonical-order contract).
  EXPECT_EQ(replay_once(8), sequential);
}

}  // namespace
}  // namespace envnws::env
