// The within-zone batch schedule: the endpoint-constrained makespan
// model, the default ProbeEngine::run_batch loop (canonical order), and
// the mapper's BatchStats accounting — including the rule that savings
// are only credited on segments whose phase-2d verdict is `switched`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.hpp"
#include "env/batch_schedule.hpp"
#include "env/mapper.hpp"
#include "env/probe_engine.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/network.hpp"
#include "simnet/scenario.hpp"

namespace envnws::env {
namespace {

ProbeExperiment pair_exp(const std::string& a, const std::string& b) {
  return ProbeExperiment::single(a, b);
}

TEST(BatchMakespan, DegenerateCases) {
  EXPECT_DOUBLE_EQ(batch_makespan({}, {}, 8), 0.0);
  EXPECT_DOUBLE_EQ(batch_makespan({pair_exp("a", "b")}, {3.0}, 8), 3.0);
  // One worker is the sequential sum by definition.
  EXPECT_DOUBLE_EQ(
      batch_makespan({pair_exp("a", "b"), pair_exp("c", "d"), pair_exp("e", "f")},
                     {1.0, 2.0, 3.0}, 1),
      6.0);
}

TEST(BatchMakespan, DisjointExperimentsOverlapUpToWorkerCount) {
  const std::vector<ProbeExperiment> disjoint{pair_exp("a", "b"), pair_exp("c", "d"),
                                              pair_exp("e", "f"), pair_exp("g", "h")};
  const std::vector<double> unit{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(batch_makespan(disjoint, unit, 4), 1.0);
  EXPECT_DOUBLE_EQ(batch_makespan(disjoint, unit, 8), 1.0);
  EXPECT_DOUBLE_EQ(batch_makespan(disjoint, unit, 2), 2.0);
}

TEST(BatchMakespan, SharedEndpointSerializesRegardlessOfWorkers) {
  // Phase 2a/2b shape: everything pivots on the master.
  const std::vector<ProbeExperiment> star{pair_exp("m", "a"), pair_exp("m", "b"),
                                          pair_exp("m", "c")};
  EXPECT_DOUBLE_EQ(batch_makespan(star, {1.0, 2.0, 3.0}, 8), 6.0);
  // A concurrent experiment's whole endpoint set counts.
  const std::vector<ProbeExperiment> pairs{
      ProbeExperiment::concurrent({BandwidthRequest{"m", "a"}, BandwidthRequest{"m", "b"}}),
      ProbeExperiment::concurrent({BandwidthRequest{"m", "c"}, BandwidthRequest{"m", "d"}})};
  EXPECT_DOUBLE_EQ(batch_makespan(pairs, {2.0, 2.0}, 8), 4.0);
}

TEST(BatchMakespan, DistinctViaAdaptersOverlapOnAMultiHomedHost) {
  // Satellite regression for the multi-homed-master serialization: two
  // transfers leaving one host through DIFFERENT adapters (`via` tags)
  // do not share a NIC, so the endpoint-disjointness rule must let them
  // overlap; the same adapter — or no tag at all — still serializes.
  const auto tagged = [](const char* via, const char* a, const char* b) {
    return ProbeExperiment::concurrent(
        {BandwidthRequest{"m", a, via}, BandwidthRequest{"m", b, via}});
  };
  const std::vector<ProbeExperiment> cross_adapter{tagged("10.0.0.1", "a", "b"),
                                                   tagged("192.168.0.1", "c", "d")};
  EXPECT_DOUBLE_EQ(batch_makespan(cross_adapter, {2.0, 2.0}, 8), 2.0);

  const std::vector<ProbeExperiment> same_adapter{tagged("10.0.0.1", "a", "b"),
                                                  tagged("10.0.0.1", "c", "d")};
  EXPECT_DOUBLE_EQ(batch_makespan(same_adapter, {2.0, 2.0}, 8), 4.0);

  const std::vector<ProbeExperiment> untagged{tagged("", "a", "b"), tagged("", "c", "d")};
  EXPECT_DOUBLE_EQ(batch_makespan(untagged, {2.0, 2.0}, 8), 4.0);
}

TEST(BatchMakespan, CompleteGraphPairsScheduleLikeATournament) {
  // All C(4,2) member pairs of one segment, unit duration. A perfect
  // round-robin needs n-1 = 3 rounds; the greedy canonical-order
  // scheduler achieves exactly that (later pairs overtake blocked ones).
  std::vector<ProbeExperiment> experiments;
  const std::vector<std::string> member{"a", "b", "c", "d"};
  for (std::size_t i = 0; i < member.size(); ++i) {
    for (std::size_t j = i + 1; j < member.size(); ++j) {
      experiments.push_back(pair_exp(member[i], member[j]));
    }
  }
  const std::vector<double> unit(experiments.size(), 1.0);
  EXPECT_DOUBLE_EQ(batch_makespan(experiments, unit, 8), 3.0);
  EXPECT_DOUBLE_EQ(batch_makespan(experiments, unit, 1), 6.0);
}

/// Engine that logs the order of its calls; run_batch is inherited, so
/// this asserts the default loop preserves canonical order.
class OrderLoggingEngine final : public ProbeEngine {
 public:
  Result<HostIdentity> lookup(const std::string& hostname) override {
    calls.push_back("L " + hostname);
    return HostIdentity{hostname, "10.0.0.1", {}};
  }
  Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                           const std::string& target) override {
    calls.push_back("T " + from + ">" + target);
    return std::vector<TraceHop>{};
  }
  Result<double> bandwidth(const std::string& from, const std::string& to) override {
    calls.push_back("B " + from + ">" + to);
    stats_.experiments++;
    stats_.busy_time_s += 1.0;
    return 1e6;
  }
  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) override {
    std::string call = "C";
    for (const auto& request : requests) call += " " + request.from + ">" + request.to;
    calls.push_back(call);
    stats_.experiments++;
    stats_.busy_time_s += 2.0;
    return std::vector<Result<double>>(requests.size(), Result<double>(5e5));
  }
  [[nodiscard]] ProbeStats stats() const override { return stats_; }

  std::vector<std::string> calls;

 private:
  ProbeStats stats_;
};

TEST(RunBatch, DefaultImplementationIsTheCanonicalSequentialLoop) {
  OrderLoggingEngine engine;
  const std::vector<ProbeExperiment> experiments{
      ProbeExperiment::single("m", "a"),
      ProbeExperiment::concurrent({BandwidthRequest{"m", "a"}, BandwidthRequest{"m", "b"}}),
      ProbeExperiment::single("a", "b")};
  const auto outcomes = engine.run_batch(experiments, 8);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(engine.calls,
            (std::vector<std::string>{"B m>a", "C m>a m>b", "B a>b"}));
  // Results indexed by canonical order, durations from stats diffs.
  EXPECT_DOUBLE_EQ(outcomes[0].results.front().value(), 1e6);
  ASSERT_EQ(outcomes[1].results.size(), 2u);
  EXPECT_DOUBLE_EQ(outcomes[1].results[1].value(), 5e5);
  EXPECT_DOUBLE_EQ(outcomes[0].duration_s, 1.0);
  EXPECT_DOUBLE_EQ(outcomes[1].duration_s, 2.0);
  EXPECT_DOUBLE_EQ(outcomes[2].duration_s, 1.0);
}

/// Map one scenario's first zone with the given probe_jobs.
ZoneMapResult map_zone(const simnet::Scenario& scenario, int probe_jobs) {
  simnet::Network net(simnet::Scenario(scenario).topology);
  MapperOptions options;
  options.probe_jobs = probe_jobs;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  const auto zones = zones_from_scenario(scenario);
  EXPECT_TRUE(zones.ok());
  auto result = mapper.map_zone(zones.value().front());
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  return std::move(result.value());
}

TEST(BatchedMapping, SwitchedSegmentEarnsTheMakespanCredit) {
  const auto sequential = map_zone(simnet::star_switch(8, units::mbps(100)), 1);
  const auto batched = map_zone(simnet::star_switch(8, units::mbps(100)), 8);
  // What was measured is identical...
  EXPECT_EQ(render_effective(sequential.root), render_effective(batched.root));
  EXPECT_EQ(sequential.stats.experiments, batched.stats.experiments);
  EXPECT_DOUBLE_EQ(sequential.stats.duration_s, batched.stats.duration_s);
  // ...the batches are the same...
  EXPECT_EQ(sequential.batch.batches, batched.batch.batches);
  EXPECT_EQ(sequential.batch.batched_experiments, batched.batch.batched_experiments);
  EXPECT_DOUBLE_EQ(sequential.batch.sequential_s, batched.batch.sequential_s);
  // ...but only the batched schedule models a shorter makespan (the
  // phase-2c internal pairs of the switched segment overlap).
  EXPECT_DOUBLE_EQ(sequential.batch.makespan_s, sequential.batch.sequential_s);
  EXPECT_LT(batched.batch.makespan_s, batched.batch.sequential_s);
  EXPECT_LT(batched.batched_duration_s(), batched.stats.duration_s);
  EXPECT_DOUBLE_EQ(sequential.batched_duration_s(), sequential.stats.duration_s);
}

/// Master on two subnets behind two switches: the 100 Mbps group and the
/// 10 Mbps group split at phase 2a, and their phase-2b pair experiments
/// share no NIC — only the via tags derived from the master's alias let
/// the schedule know that.
simnet::Scenario multi_homed_master(bool aliased) {
  simnet::Scenario scenario;
  scenario.name = aliased ? "mh-aliased" : "mh-plain";
  simnet::Topology& topo = scenario.topology;
  const auto m = topo.add_host("m", "m.lan", simnet::Ipv4(10, 0, 0, 1));
  if (aliased) {
    // The alias lives in its own zone: in `default` the primary identity
    // stays authoritative (traceroute keeps answering m.lan), while
    // lookup() still surfaces 192.168.0.1 through extra_ips.
    topo.add_alias(m, simnet::HostAlias{"m2.lan", simnet::Ipv4(192, 168, 0, 1), "backnet"});
  }
  const auto fast = topo.add_switch("fast-sw");
  const auto slow = topo.add_switch("slow-sw");
  topo.connect(m, fast, units::mbps(100), 1e-4);
  topo.connect(m, slow, units::mbps(10), 1e-4);
  const char* names[] = {"a1", "a2", "b1", "b2"};
  for (int i = 0; i < 4; ++i) {
    const bool is_fast = i < 2;
    const auto host = topo.add_host(
        names[i], std::string(names[i]) + ".lan",
        is_fast ? simnet::Ipv4(10, 0, 0, static_cast<std::uint8_t>(2 + i))
                : simnet::Ipv4(192, 168, 0, static_cast<std::uint8_t>(i)));
    topo.connect(host, is_fast ? fast : slow, units::mbps(is_fast ? 100 : 10), 1e-4);
  }
  scenario.master = "m";
  return scenario;
}

ZoneMapResult map_multi_homed(bool aliased, int probe_jobs) {
  const simnet::Scenario scenario = multi_homed_master(aliased);
  simnet::Network net(simnet::Scenario(scenario).topology);
  MapperOptions options;
  options.probe_jobs = probe_jobs;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  ZoneSpec spec;
  spec.zone_name = "default";
  spec.hostnames = {"m.lan", "a1.lan", "a2.lan", "b1.lan", "b2.lan"};
  spec.master = "m.lan";
  spec.traceroute_target = "m.lan";
  auto result = mapper.map_zone(spec);
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  return std::move(result.value());
}

TEST(BatchedMapping, MultiHomedMasterOverlapsCrossGroupPairwise) {
  const auto plain = map_multi_homed(false, 4);
  const auto aliased = map_multi_homed(true, 4);
  // The alias changes NOTHING about what is measured — only the
  // schedule model learns the two adapters exist.
  EXPECT_EQ(render_effective(plain.root), render_effective(aliased.root));
  EXPECT_EQ(plain.stats.experiments, aliased.stats.experiments);
  EXPECT_DOUBLE_EQ(plain.stats.duration_s, aliased.stats.duration_s);
  EXPECT_EQ(plain.batch.batches, aliased.batch.batches);
  // ...but the aliased master's cross-group 2b pairs overlap, so its
  // modeled makespan is strictly shorter.
  EXPECT_LT(aliased.batch.makespan_s, plain.batch.makespan_s);

  // Worker count never changes the result, with or without the tags.
  const auto aliased_seq = map_multi_homed(true, 1);
  EXPECT_EQ(render_effective(aliased_seq.root), render_effective(aliased.root));
  EXPECT_EQ(aliased_seq.stats.experiments, aliased.stats.experiments);
  EXPECT_DOUBLE_EQ(aliased_seq.batch.sequential_s, aliased.batch.sequential_s);
  EXPECT_DOUBLE_EQ(aliased_seq.batch.makespan_s, aliased_seq.batch.sequential_s);
}

TEST(BatchedMapping, SharedSegmentGetsNoCredit) {
  // A hub's jam verdict is `shared`: concurrent internal transfers
  // would have contended, so the modeled schedule must not pretend the
  // batched 2c pairs overlapped.
  const auto batched = map_zone(simnet::star_hub(8, units::mbps(10)), 8);
  EXPECT_GT(batched.batch.batched_experiments, 0u);
  EXPECT_DOUBLE_EQ(batched.batch.makespan_s, batched.batch.sequential_s);
  EXPECT_DOUBLE_EQ(batched.batched_duration_s(), batched.stats.duration_s);
}

}  // namespace
}  // namespace envnws::env
