// The within-zone batch schedule: the endpoint-constrained makespan
// model, the default ProbeEngine::run_batch loop (canonical order), and
// the mapper's BatchStats accounting — including the rule that savings
// are only credited on segments whose phase-2d verdict is `switched`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.hpp"
#include "env/batch_schedule.hpp"
#include "env/mapper.hpp"
#include "env/probe_engine.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/network.hpp"
#include "simnet/scenario.hpp"

namespace envnws::env {
namespace {

ProbeExperiment pair_exp(const std::string& a, const std::string& b) {
  return ProbeExperiment::single(a, b);
}

TEST(BatchMakespan, DegenerateCases) {
  EXPECT_DOUBLE_EQ(batch_makespan({}, {}, 8), 0.0);
  EXPECT_DOUBLE_EQ(batch_makespan({pair_exp("a", "b")}, {3.0}, 8), 3.0);
  // One worker is the sequential sum by definition.
  EXPECT_DOUBLE_EQ(
      batch_makespan({pair_exp("a", "b"), pair_exp("c", "d"), pair_exp("e", "f")},
                     {1.0, 2.0, 3.0}, 1),
      6.0);
}

TEST(BatchMakespan, DisjointExperimentsOverlapUpToWorkerCount) {
  const std::vector<ProbeExperiment> disjoint{pair_exp("a", "b"), pair_exp("c", "d"),
                                              pair_exp("e", "f"), pair_exp("g", "h")};
  const std::vector<double> unit{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(batch_makespan(disjoint, unit, 4), 1.0);
  EXPECT_DOUBLE_EQ(batch_makespan(disjoint, unit, 8), 1.0);
  EXPECT_DOUBLE_EQ(batch_makespan(disjoint, unit, 2), 2.0);
}

TEST(BatchMakespan, SharedEndpointSerializesRegardlessOfWorkers) {
  // Phase 2a/2b shape: everything pivots on the master.
  const std::vector<ProbeExperiment> star{pair_exp("m", "a"), pair_exp("m", "b"),
                                          pair_exp("m", "c")};
  EXPECT_DOUBLE_EQ(batch_makespan(star, {1.0, 2.0, 3.0}, 8), 6.0);
  // A concurrent experiment's whole endpoint set counts.
  const std::vector<ProbeExperiment> pairs{
      ProbeExperiment::concurrent({BandwidthRequest{"m", "a"}, BandwidthRequest{"m", "b"}}),
      ProbeExperiment::concurrent({BandwidthRequest{"m", "c"}, BandwidthRequest{"m", "d"}})};
  EXPECT_DOUBLE_EQ(batch_makespan(pairs, {2.0, 2.0}, 8), 4.0);
}

TEST(BatchMakespan, CompleteGraphPairsScheduleLikeATournament) {
  // All C(4,2) member pairs of one segment, unit duration. A perfect
  // round-robin needs n-1 = 3 rounds; the greedy canonical-order
  // scheduler achieves exactly that (later pairs overtake blocked ones).
  std::vector<ProbeExperiment> experiments;
  const std::vector<std::string> member{"a", "b", "c", "d"};
  for (std::size_t i = 0; i < member.size(); ++i) {
    for (std::size_t j = i + 1; j < member.size(); ++j) {
      experiments.push_back(pair_exp(member[i], member[j]));
    }
  }
  const std::vector<double> unit(experiments.size(), 1.0);
  EXPECT_DOUBLE_EQ(batch_makespan(experiments, unit, 8), 3.0);
  EXPECT_DOUBLE_EQ(batch_makespan(experiments, unit, 1), 6.0);
}

/// Engine that logs the order of its calls; run_batch is inherited, so
/// this asserts the default loop preserves canonical order.
class OrderLoggingEngine final : public ProbeEngine {
 public:
  Result<HostIdentity> lookup(const std::string& hostname) override {
    calls.push_back("L " + hostname);
    return HostIdentity{hostname, "10.0.0.1", {}};
  }
  Result<std::vector<TraceHop>> traceroute(const std::string& from,
                                           const std::string& target) override {
    calls.push_back("T " + from + ">" + target);
    return std::vector<TraceHop>{};
  }
  Result<double> bandwidth(const std::string& from, const std::string& to) override {
    calls.push_back("B " + from + ">" + to);
    stats_.experiments++;
    stats_.busy_time_s += 1.0;
    return 1e6;
  }
  std::vector<Result<double>> concurrent_bandwidth(
      const std::vector<BandwidthRequest>& requests) override {
    std::string call = "C";
    for (const auto& request : requests) call += " " + request.from + ">" + request.to;
    calls.push_back(call);
    stats_.experiments++;
    stats_.busy_time_s += 2.0;
    return std::vector<Result<double>>(requests.size(), Result<double>(5e5));
  }
  [[nodiscard]] ProbeStats stats() const override { return stats_; }

  std::vector<std::string> calls;

 private:
  ProbeStats stats_;
};

TEST(RunBatch, DefaultImplementationIsTheCanonicalSequentialLoop) {
  OrderLoggingEngine engine;
  const std::vector<ProbeExperiment> experiments{
      ProbeExperiment::single("m", "a"),
      ProbeExperiment::concurrent({BandwidthRequest{"m", "a"}, BandwidthRequest{"m", "b"}}),
      ProbeExperiment::single("a", "b")};
  const auto outcomes = engine.run_batch(experiments, 8);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(engine.calls,
            (std::vector<std::string>{"B m>a", "C m>a m>b", "B a>b"}));
  // Results indexed by canonical order, durations from stats diffs.
  EXPECT_DOUBLE_EQ(outcomes[0].results.front().value(), 1e6);
  ASSERT_EQ(outcomes[1].results.size(), 2u);
  EXPECT_DOUBLE_EQ(outcomes[1].results[1].value(), 5e5);
  EXPECT_DOUBLE_EQ(outcomes[0].duration_s, 1.0);
  EXPECT_DOUBLE_EQ(outcomes[1].duration_s, 2.0);
  EXPECT_DOUBLE_EQ(outcomes[2].duration_s, 1.0);
}

/// Map one scenario's first zone with the given probe_jobs.
ZoneMapResult map_zone(const simnet::Scenario& scenario, int probe_jobs) {
  simnet::Network net(simnet::Scenario(scenario).topology);
  MapperOptions options;
  options.probe_jobs = probe_jobs;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  const auto zones = zones_from_scenario(scenario);
  EXPECT_TRUE(zones.ok());
  auto result = mapper.map_zone(zones.value().front());
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  return std::move(result.value());
}

TEST(BatchedMapping, SwitchedSegmentEarnsTheMakespanCredit) {
  const auto sequential = map_zone(simnet::star_switch(8, units::mbps(100)), 1);
  const auto batched = map_zone(simnet::star_switch(8, units::mbps(100)), 8);
  // What was measured is identical...
  EXPECT_EQ(render_effective(sequential.root), render_effective(batched.root));
  EXPECT_EQ(sequential.stats.experiments, batched.stats.experiments);
  EXPECT_DOUBLE_EQ(sequential.stats.duration_s, batched.stats.duration_s);
  // ...the batches are the same...
  EXPECT_EQ(sequential.batch.batches, batched.batch.batches);
  EXPECT_EQ(sequential.batch.batched_experiments, batched.batch.batched_experiments);
  EXPECT_DOUBLE_EQ(sequential.batch.sequential_s, batched.batch.sequential_s);
  // ...but only the batched schedule models a shorter makespan (the
  // phase-2c internal pairs of the switched segment overlap).
  EXPECT_DOUBLE_EQ(sequential.batch.makespan_s, sequential.batch.sequential_s);
  EXPECT_LT(batched.batch.makespan_s, batched.batch.sequential_s);
  EXPECT_LT(batched.batched_duration_s(), batched.stats.duration_s);
  EXPECT_DOUBLE_EQ(sequential.batched_duration_s(), sequential.stats.duration_s);
}

TEST(BatchedMapping, SharedSegmentGetsNoCredit) {
  // A hub's jam verdict is `shared`: concurrent internal transfers
  // would have contended, so the modeled schedule must not pretend the
  // batched 2c pairs overlapped.
  const auto batched = map_zone(simnet::star_hub(8, units::mbps(10)), 8);
  EXPECT_GT(batched.batch.batched_experiments, 0u);
  EXPECT_DOUBLE_EQ(batched.batch.makespan_s, batched.batch.sequential_s);
  EXPECT_DOUBLE_EQ(batched.batched_duration_s(), batched.stats.duration_s);
}

}  // namespace
}  // namespace envnws::env
