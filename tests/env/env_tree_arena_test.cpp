// The flat SoA EnvTree arena: lossless round-trips with the pointer
// tree, preorder layout invariants, and render parity with the
// recursive representation (render_effective(EnvNetwork) routes through
// the arena, so the literal expectations here pin the format itself).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "common/units.hpp"
#include "env/env_tree.hpp"
#include "env/env_tree_arena.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/network.hpp"
#include "simnet/scenario.hpp"

namespace envnws::env {
namespace {

/// A tree exercising every column: nested structure, every NetKind,
/// machines, gateways, reverse bandwidth and the asymmetry flag.
EnvNetwork sample_tree() {
  EnvNetwork root;
  root.kind = NetKind::structural;
  root.label = "edge.example.org";
  root.label_ip = "192.0.2.1";

  EnvNetwork lan;
  lan.kind = NetKind::switched;
  lan.label = "lan0";
  lan.base_bw_bps = units::mbps(100);
  lan.base_local_bw_bps = units::mbps(94.5);
  lan.machines = {"a.example.org", "b.example.org"};

  EnvNetwork hub;
  hub.kind = NetKind::shared;
  hub.label = "hub0";
  hub.base_bw_bps = units::mbps(10);
  hub.gateway = "gw.example.org";
  hub.machines = {"gw.example.org", "c.example.org"};

  EnvNetwork weird;
  weird.kind = NetKind::inconclusive;
  weird.label = "dmz";
  weird.base_bw_bps = units::mbps(42);
  weird.base_reverse_bw_bps = units::mbps(7);
  weird.route_asymmetric = true;
  weird.machines = {"d.example.org"};
  hub.children.push_back(weird);

  root.children.push_back(lan);
  root.children.push_back(hub);
  return root;
}

TEST(EnvTreeArena, RoundTripIsLossless) {
  const EnvNetwork original = sample_tree();
  const EnvTreeArena arena = EnvTreeArena::from_tree(original);
  EXPECT_EQ(arena.size(), 4u);
  EXPECT_EQ(arena.machine_count(), 5u);

  const EnvNetwork back = arena.to_tree();
  EXPECT_EQ(render_effective(back), render_effective(original));
  EXPECT_EQ(back.all_machines(), original.all_machines());
  EXPECT_EQ(back.gateways(), original.gateways());
  // Column-level equality for the fields render doesn't show.
  ASSERT_EQ(back.children.size(), 2u);
  EXPECT_EQ(back.children[0].base_local_bw_bps, original.children[0].base_local_bw_bps);
  EXPECT_EQ(back.children[1].children[0].base_reverse_bw_bps,
            original.children[1].children[0].base_reverse_bw_bps);
  EXPECT_TRUE(back.children[1].children[0].route_asymmetric);
}

TEST(EnvTreeArena, PreorderLayoutAndLinks) {
  const EnvTreeArena arena = EnvTreeArena::from_tree(sample_tree());
  // Preorder: root(0), lan(1), hub(2), dmz(3).
  EXPECT_EQ(arena.label(0), "edge.example.org");
  EXPECT_EQ(arena.label(1), "lan0");
  EXPECT_EQ(arena.label(2), "hub0");
  EXPECT_EQ(arena.label(3), "dmz");

  EXPECT_EQ(arena.parent(0), EnvTreeArena::npos);
  EXPECT_EQ(arena.parent(1), 0u);
  EXPECT_EQ(arena.parent(2), 0u);
  EXPECT_EQ(arena.parent(3), 2u);

  EXPECT_EQ(arena.first_child(0), 1u);
  EXPECT_EQ(arena.next_sibling(1), 2u);
  EXPECT_EQ(arena.next_sibling(2), EnvTreeArena::npos);
  EXPECT_EQ(arena.first_child(2), 3u);
  EXPECT_EQ(arena.first_child(1), EnvTreeArena::npos);

  EXPECT_EQ(arena.depth(0), 0u);
  EXPECT_EQ(arena.depth(1), 1u);
  EXPECT_EQ(arena.depth(3), 2u);

  EXPECT_EQ(arena.machine_count(0), 0u);
  EXPECT_EQ(arena.machine_count(1), 2u);
  EXPECT_EQ(*arena.machines_begin(1), "a.example.org");
  EXPECT_TRUE(arena.route_asymmetric(3));
  EXPECT_DOUBLE_EQ(arena.base_reverse_bw_bps(3), units::mbps(7));
}

TEST(EnvTreeArena, RenderMatchesTheCommittedFormat) {
  const std::string rendered = render_effective(EnvTreeArena::from_tree(sample_tree()));
  EXPECT_EQ(rendered,
            "* edge.example.org [192.0.2.1]\n"
            "  + lan0 <switched> base=100.00Mbps local=94.50Mbps\n"
            "      machines: a.example.org, b.example.org\n"
            "  + hub0 <shared> base=10.00Mbps via gw.example.org\n"
            "      machines: gw.example.org, c.example.org\n"
            "    + dmz <inconclusive> base=42.00Mbps reverse=7.00Mbps [ASYMMETRIC ROUTE]\n"
            "        machines: d.example.org\n");
}

TEST(EnvTreeArena, RealMappedViewRoundTrips) {
  auto made = api::ScenarioRegistry::builtin().make("multi-firewall:2x3@100/100");
  ASSERT_TRUE(made.ok());
  const simnet::Scenario scenario = std::move(made.value());
  simnet::Network net(simnet::Scenario(scenario).topology);
  MapperOptions options;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  const auto zones = zones_from_scenario(scenario);
  ASSERT_TRUE(zones.ok());
  auto result = mapper.map(zones.value());
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  const EnvTreeArena arena = EnvTreeArena::from_tree(result.value().root);
  EXPECT_GT(arena.size(), 1u);
  EXPECT_EQ(render_effective(arena.to_tree()), render_effective(result.value().root));
  EXPECT_EQ(arena.to_tree().all_machines(), result.value().root.all_machines());
}

}  // namespace
}  // namespace envnws::env
