// Full ENS-Lyon mapping: reproduces paper Figures 1(b) and 2 and the
// firewall merge of §4.3.
#include <algorithm>
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/scenario.hpp"

namespace envnws::env {
namespace {

using units::mbps;

class EnsLyonMap : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new simnet::Scenario(simnet::ens_lyon());
    net_ = new simnet::Network(simnet::Scenario(*scenario_).topology);
    MapperOptions options;
    SimProbeEngine engine(*net_, options);
    Mapper mapper(engine, options);
    auto result =
        mapper.map(zones_from_scenario(*scenario_).value(),
                   gateway_aliases_from_scenario(*scenario_));
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    map_ = new MapResult(std::move(result.value()));
  }
  static void TearDownTestSuite() {
    delete map_;
    map_ = nullptr;
    delete net_;
    net_ = nullptr;
    delete scenario_;
    scenario_ = nullptr;
  }

  static simnet::Scenario* scenario_;
  static simnet::Network* net_;
  static MapResult* map_;
};

simnet::Scenario* EnsLyonMap::scenario_ = nullptr;
simnet::Network* EnsLyonMap::net_ = nullptr;
MapResult* EnsLyonMap::map_ = nullptr;

const EnvNetwork* segment_of(const MapResult& map, const std::string& machine) {
  return map.root.find_containing(machine);
}

TEST_F(EnsLyonMap, TwoZonesWereMapped) {
  ASSERT_EQ(map_->zones.size(), 2u);
  EXPECT_EQ(map_->zones[0].spec.zone_name, "ens-lyon.fr");
  EXPECT_EQ(map_->zones[1].spec.zone_name, "popc.private");
  EXPECT_EQ(map_->master_fqdn, "the-doors.ens-lyon.fr");
}

TEST_F(EnsLyonMap, Figure2StructuralTree) {
  const StructuralNode& root = map_->zones.front().structural;
  EXPECT_EQ(root.ip, "192.168.254.1");  // non-routable root kept (§4.3)
  ASSERT_EQ(root.children.size(), 2u);
  // Branch 1: 140.77.13.1 with the three public machines.
  EXPECT_EQ(root.children[0].ip, "140.77.13.1");
  EXPECT_EQ(root.children[0].machines.size(), 3u);
  // Branch 2: routeur-backbone -> routlhpc -> {myri, popc, sci}.
  EXPECT_EQ(root.children[1].name, "routeur-backbone.ens-lyon.fr");
  ASSERT_EQ(root.children[1].children.size(), 1u);
  EXPECT_EQ(root.children[1].children[0].name, "routlhpc.ens-lyon.fr");
  EXPECT_EQ(root.children[1].children[0].machines.size(), 3u);
}

TEST_F(EnsLyonMap, Figure1bHub1) {
  const EnvNetwork* hub1 = segment_of(*map_, "canaria.ens-lyon.fr");
  ASSERT_NE(hub1, nullptr);
  EXPECT_EQ(hub1->kind, NetKind::shared);
  EXPECT_EQ(hub1->machines.size(), 3u);  // the-doors, canaria, moby
  EXPECT_TRUE(std::find(hub1->machines.begin(), hub1->machines.end(),
                        "the-doors.ens-lyon.fr") != hub1->machines.end());
  EXPECT_NEAR(hub1->base_bw_bps, mbps(100), mbps(3));
}

TEST_F(EnsLyonMap, Figure1bHub2BehindBottleneck) {
  const EnvNetwork* hub2 = segment_of(*map_, "popc.ens-lyon.fr");
  ASSERT_NE(hub2, nullptr);
  // "popc0, myri0 and sci0 are on a 100 Mbps hub, whereas links to reach
  // popc0 and myri0 from the-doors must go through a bottleneck at
  // 10 Mbps": shared verdict (from the private-side view), base_bw from
  // the master's viewpoint ~10, local ~100.
  EXPECT_EQ(hub2->kind, NetKind::shared);
  EXPECT_EQ(hub2->machines.size(), 3u);
  EXPECT_NEAR(hub2->base_bw_bps, mbps(10), mbps(1));
  EXPECT_NEAR(hub2->base_local_bw_bps, mbps(100), mbps(3));
}

TEST_F(EnsLyonMap, Figure1bMyriHubShared) {
  const EnvNetwork* hub3 = segment_of(*map_, "myri1.popc.private");
  ASSERT_NE(hub3, nullptr);
  EXPECT_EQ(hub3->kind, NetKind::shared);
  EXPECT_EQ(hub3->machines.size(), 2u);
  EXPECT_EQ(hub3->gateway, "myri.ens-lyon.fr");  // canonicalized
}

TEST_F(EnsLyonMap, Figure1bSciClusterSwitched) {
  const EnvNetwork* sci = segment_of(*map_, "sci3.popc.private");
  ASSERT_NE(sci, nullptr);
  // The paper's GridML: ENV_Switched, base 32.65 Mbps, local 32.29 Mbps.
  EXPECT_EQ(sci->kind, NetKind::switched);
  EXPECT_EQ(sci->machines.size(), 6u);
  EXPECT_NEAR(sci->base_bw_bps, mbps(33), mbps(1.5));
  EXPECT_NEAR(sci->base_local_bw_bps, mbps(33), mbps(1.5));
  EXPECT_EQ(sci->gateway, "sci.ens-lyon.fr");
}

TEST_F(EnsLyonMap, NestingFollowsGateways) {
  // hub3 and the sci switch hang under hub2 in the merged view.
  const EnvNetwork* hub2 = segment_of(*map_, "popc.ens-lyon.fr");
  ASSERT_NE(hub2, nullptr);
  ASSERT_EQ(hub2->children.size(), 2u);
  std::vector<NetKind> kinds{hub2->children[0].kind, hub2->children[1].kind};
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), NetKind::shared) != kinds.end());
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), NetKind::switched) != kinds.end());
}

TEST_F(EnsLyonMap, MergedGridCarriesBothSitesAndGatewayAliases) {
  const auto& grid = map_->grid;
  // ens-lyon.fr (+ cri2000.ens-lyon.fr is folded to 2 labels) and
  // popc.private sites present.
  EXPECT_GE(grid.sites.size(), 2u);
  const gridml::Machine* gateway = grid.find_machine("popc0.popc.private");
  ASSERT_NE(gateway, nullptr);
  EXPECT_TRUE(gateway->answers_to("popc.ens-lyon.fr"));
  // Host inventory propagated.
  const gridml::Machine* moby = grid.find_machine("moby.cri2000.ens-lyon.fr");
  ASSERT_NE(moby, nullptr);
  EXPECT_EQ(moby->property("CPU_model").value_or(""), "Pentium Pro");
}

TEST_F(EnsLyonMap, GridmlSerializationRoundTrips) {
  const std::string xml = map_->grid.to_string();
  EXPECT_NE(xml.find("ENV_Switched"), std::string::npos);
  EXPECT_NE(xml.find("ENV_Shared"), std::string::npos);
  const auto reparsed = gridml::GridDoc::parse(xml);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().to_string(), xml);
  // The effective tree survives the round trip.
  ASSERT_FALSE(reparsed.value().networks.empty());
  const auto rebuilt = EnvNetwork::from_gridml(reparsed.value().networks.back());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value().all_machines().size(), map_->root.all_machines().size());
}

TEST_F(EnsLyonMap, MappingTakesMinutesNotDays) {
  // "the mapping of our platform only last a few minutes"
  EXPECT_LT(map_->stats.duration_s, 15.0 * 60.0);
  EXPECT_GT(map_->stats.duration_s, 10.0);
  EXPECT_LT(map_->stats.experiments, 200u);
}

TEST_F(EnsLyonMap, RenderMentionsAllSegments) {
  const std::string out = render_effective(map_->root);
  EXPECT_NE(out.find("shared"), std::string::npos);
  EXPECT_NE(out.find("switched"), std::string::npos);
  EXPECT_NE(out.find("sci1.popc.private"), std::string::npos);
}

TEST_F(EnsLyonMap, AsymmetryLimitationReproduced) {
  // §4.3: "Since ENV bandwidth tests are conducted in only one way, the
  // system cannot detect such problems": the effective view records the
  // forward (10 Mbps) direction only; nothing in the tree reflects the
  // 100 Mbps return path.
  const EnvNetwork* hub2 = segment_of(*map_, "popc.ens-lyon.fr");
  ASSERT_NE(hub2, nullptr);
  EXPECT_LT(hub2->base_bw_bps, mbps(15));  // return-direction 100 invisible
}

}  // namespace
}  // namespace envnws::env
