// Tests for the bidirectional-probing extension (paper §4.3 lists
// asymmetric-route detection as future work: "still to do").
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "env/mapper.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/scenario.hpp"

namespace envnws::env {
namespace {

using units::mbps;

ZoneSpec public_zone(const std::string& master) {
  ZoneSpec spec;
  spec.zone_name = "ens-lyon.fr";
  spec.hostnames = {"the-doors.ens-lyon.fr", "canaria.ens-lyon.fr",
                    "moby.cri2000.ens-lyon.fr", "popc.ens-lyon.fr", "myri.ens-lyon.fr",
                    "sci.ens-lyon.fr"};
  spec.master = master;
  spec.traceroute_target = "edge";
  return spec;
}

TEST(Bidirectional, DetectsTheEnsLyonAsymmetry) {
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);
  MapperOptions options;
  options.bidirectional_probes = true;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  auto result = mapper.map_zone(public_zone("the-doors.ens-lyon.fr"));
  ASSERT_TRUE(result.ok());

  const EnvNetwork* hub2 = result.value().root.find_containing("popc.ens-lyon.fr");
  ASSERT_NE(hub2, nullptr);
  // Forward ~10 Mbps, reverse ~100 Mbps: flagged.
  EXPECT_NEAR(hub2->base_bw_bps, mbps(10), mbps(1));
  EXPECT_NEAR(hub2->base_reverse_bw_bps, mbps(100), mbps(5));
  EXPECT_TRUE(hub2->route_asymmetric);

  const EnvNetwork* hub1 = result.value().root.find_containing("canaria.ens-lyon.fr");
  ASSERT_NE(hub1, nullptr);
  // Hub1 is symmetric from the master's viewpoint.
  EXPECT_FALSE(hub1->route_asymmetric);
  EXPECT_NEAR(hub1->base_reverse_bw_bps, hub1->base_bw_bps, mbps(5));
}

TEST(Bidirectional, OffByDefaultAndFieldsStayEmpty) {
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);
  MapperOptions options;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  auto result = mapper.map_zone(public_zone("the-doors.ens-lyon.fr"));
  ASSERT_TRUE(result.ok());
  const EnvNetwork* hub2 = result.value().root.find_containing("popc.ens-lyon.fr");
  ASSERT_NE(hub2, nullptr);
  EXPECT_DOUBLE_EQ(hub2->base_reverse_bw_bps, 0.0);
  EXPECT_FALSE(hub2->route_asymmetric);
}

TEST(Bidirectional, DoublesHostBandwidthExperiments) {
  const auto count_for = [](bool bidirectional) {
    simnet::Scenario scenario = simnet::star_switch(5, mbps(100));
    simnet::Network net(simnet::Scenario(scenario).topology);
    MapperOptions options;
    options.bidirectional_probes = bidirectional;
    SimProbeEngine engine(net, options);
    Mapper mapper(engine, options);
    ZoneSpec spec;
    spec.zone_name = "lan";
    spec.hostnames = {"h0.lan", "h1.lan", "h2.lan", "h3.lan", "h4.lan"};
    spec.master = "h0.lan";
    spec.traceroute_target = "h0.lan";
    auto result = mapper.map_zone(spec);
    EXPECT_TRUE(result.ok());
    return result.value().stats.experiments;
  };
  const auto one_way = count_for(false);
  const auto two_way = count_for(true);
  // Phase 2a grows by exactly n-1 = 4 reverse probes.
  EXPECT_EQ(two_way, one_way + 4);
}

TEST(Bidirectional, GridmlRoundTripKeepsAsymmetryAnnotations) {
  EnvNetwork net;
  net.kind = NetKind::shared;
  net.label = "hub";
  net.base_bw_bps = mbps(10);
  net.base_reverse_bw_bps = mbps(100);
  net.route_asymmetric = true;
  net.machines = {"a.lan", "b.lan"};
  const gridml::NetworkNode node = net.to_gridml();
  EXPECT_EQ(node.property("ENV_base_reverse_BW").value_or(""), "100.00");
  EXPECT_TRUE(node.property("ENV_route_asymmetric").has_value());
  const auto rebuilt = EnvNetwork::from_gridml(node);
  ASSERT_TRUE(rebuilt.ok());
  const EnvNetwork& back = rebuilt.value();
  EXPECT_TRUE(back.route_asymmetric);
  EXPECT_NEAR(back.base_reverse_bw_bps, mbps(100), 1.0);
  // Rendering mentions the flag.
  EXPECT_NE(render_effective(back).find("ASYMMETRIC"), std::string::npos);
}

TEST(Bidirectional, SymmetricPlatformStaysUnflagged) {
  simnet::Scenario scenario = simnet::star_hub(4, mbps(100));
  simnet::Network net(simnet::Scenario(scenario).topology);
  MapperOptions options;
  options.bidirectional_probes = true;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  ZoneSpec spec;
  spec.zone_name = "lan";
  spec.hostnames = {"h0.lan", "h1.lan", "h2.lan", "h3.lan"};
  spec.master = "h0.lan";
  spec.traceroute_target = "h0.lan";
  auto result = mapper.map_zone(spec);
  ASSERT_TRUE(result.ok());
  for (const auto* segment : result.value().root.lan_segments()) {
    EXPECT_FALSE(segment->route_asymmetric);
  }
}

}  // namespace
}  // namespace envnws::env
