// Wire-protocol robustness (env/probe_wire.hpp, env/probe_agent.hpp):
// frame decoding and message parsing must turn EVERY malformed input —
// truncated frames, oversized or junk length prefixes, wrong magic,
// non-numeric fields — into an error Result, never an exception, hang
// or out-of-bounds access (the CI sanitizer job runs this suite under
// ASan+UBSan). Includes a seeded fuzz pass and live-socket checks
// against a real ProbeAgent and a scripted junk-replying server.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "env/probe_agent.hpp"
#include "env/probe_wire.hpp"
#include "env/socket_probe_engine.hpp"

namespace envnws::env {
namespace {

using wire::AgentRoster;
using wire::FrameBuffer;
using wire::WireMessage;

bool no_net() {
  const char* flag = std::getenv("ENVNWS_TEST_NO_NET");
  return flag != nullptr && std::string(flag) == "1";
}

#define SKIP_WITHOUT_NET()                                     \
  do {                                                         \
    if (no_net()) GTEST_SKIP() << "ENVNWS_TEST_NO_NET=1 set";  \
  } while (0)

// --- frame decoding ---------------------------------------------------------

TEST(FrameCodec, RoundTripsPayloads) {
  for (const std::string payload :
       {std::string(""), std::string("HELLO name=h0"), std::string(1024, 'x')}) {
    FrameBuffer buffer;
    buffer.feed(wire::encode_frame(payload));
    auto decoded = buffer.next();
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(decoded.value().has_value());
    EXPECT_EQ(*decoded.value(), payload);
    // Nothing left over.
    auto empty = buffer.next();
    ASSERT_TRUE(empty.ok());
    EXPECT_FALSE(empty.value().has_value());
  }
}

TEST(FrameCodec, ReassemblesFramesSplitAcrossFeeds) {
  const std::string frame = wire::encode_frame("PING seq=7");
  FrameBuffer buffer;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    auto partial = buffer.next();
    ASSERT_TRUE(partial.ok());
    EXPECT_FALSE(partial.value().has_value()) << "frame completed early at byte " << i;
    buffer.feed(frame.substr(i, 1));
  }
  auto decoded = buffer.next();
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded.value().has_value());
  EXPECT_EQ(*decoded.value(), "PING seq=7");
}

TEST(FrameCodec, DecodesBackToBackFrames) {
  FrameBuffer buffer;
  buffer.feed(wire::encode_frame("A t=1") + wire::encode_frame("B t=2"));
  auto first = buffer.next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().has_value());
  EXPECT_EQ(*first.value(), "A t=1");
  auto second = buffer.next();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(*second.value(), "B t=2");
}

TEST(FrameCodec, RejectsMalformedHeaders) {
  const char* malformed[] = {
      "EVIL 12\npayload-bytes",           // wrong magic
      "ENVPX12\n",                        // magic must include the space
      "ENVP 12x\nsome-payload-here",      // junk length
      "ENVP -5\n",                        // negative length (no wraparound)
      "ENVP 99999999999999999999\n",      // overflowing length token
      "ENVP 999999999\n",                 // oversized payload claim
      "ENVP \n",                          // empty length
      "ENVP 3 3\n",                       // embedded space in length
  };
  for (const char* input : malformed) {
    FrameBuffer buffer;
    buffer.feed(std::string(input));
    auto decoded = buffer.next();
    ASSERT_FALSE(decoded.ok()) << input;
    EXPECT_EQ(decoded.error().code, ErrorCode::protocol) << input;
    // The stream stays poisoned: feeding more never "recovers" it.
    buffer.feed(wire::encode_frame("HELLO name=h0"));
    auto still = buffer.next();
    ASSERT_FALSE(still.ok()) << input;
  }
}

TEST(FrameCodec, RejectsUnterminatedHeader) {
  FrameBuffer buffer;
  buffer.feed(std::string("ENVP 11111111111111111111111111"));  // no newline, too long
  auto decoded = buffer.next();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::protocol);
}

TEST(FrameCodec, TruncatedPayloadJustWaits) {
  FrameBuffer buffer;
  buffer.feed(std::string("ENVP 10\nabc"));  // 3 of 10 payload bytes
  auto decoded = buffer.next();
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().has_value());  // need more, not an error
  buffer.feed(std::string("defghij"));
  auto complete = buffer.next();
  ASSERT_TRUE(complete.ok());
  ASSERT_TRUE(complete.value().has_value());
  EXPECT_EQ(*complete.value(), "abcdefghij");
}

// --- message parsing --------------------------------------------------------

TEST(WireMessages, SerializeParseRoundTripsEscapedValues) {
  WireMessage message("HELLO-OK");
  message.add("fqdn", "h0.cri2000.ens-lyon.fr");
  message.add("msg", "spaces, commas, = signs and 100% percent\nnewlines");
  message.add_f64("rate", 1.25e8);
  message.add_u64("bytes", 1048576);
  auto parsed = WireMessage::parse(message.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().type, "HELLO-OK");
  EXPECT_EQ(parsed.value().get("fqdn"), "h0.cri2000.ens-lyon.fr");
  EXPECT_EQ(parsed.value().get("msg"), "spaces, commas, = signs and 100% percent\nnewlines");
  ASSERT_TRUE(parsed.value().f64("rate").ok());
  EXPECT_DOUBLE_EQ(parsed.value().f64("rate").value(), 1.25e8);
  ASSERT_TRUE(parsed.value().u64("bytes").ok());
  EXPECT_EQ(parsed.value().u64("bytes").value(), 1048576u);
}

TEST(WireMessages, RejectsMalformedPayloads) {
  const char* malformed[] = {
      "",                     // empty payload
      " HELLO",               // leading separator
      "hello name=h0",        // lower-case type
      "HELLO name",           // field without '='
      "HELLO =value",         // empty key
      "HELLO  name=h0",       // empty token from double space
      "HELLO name=h%ZZ",      // bad percent escape
      "HELLO name=h%2",       // truncated percent escape
  };
  for (const char* payload : malformed) {
    auto parsed = WireMessage::parse(payload);
    ASSERT_FALSE(parsed.ok()) << "'" << payload << "'";
    EXPECT_EQ(parsed.error().code, ErrorCode::protocol) << payload;
  }
}

TEST(WireMessages, NumericAccessorsRejectJunkWithoutThrowing) {
  auto parsed = WireMessage::parse(
      "BWXFER-OK bps=banana seconds=-1e-3 bytes=-1 big=99999999999999999999 ok=2.5");
  ASSERT_TRUE(parsed.ok());
  const WireMessage& message = parsed.value();
  EXPECT_FALSE(message.f64("bps").ok());           // junk double
  EXPECT_FALSE(message.u64("bytes").ok());         // "-1" must not wrap to 2^64-1
  EXPECT_FALSE(message.u64("big").ok());           // out of range
  EXPECT_FALSE(message.f64("absent").ok());        // missing field
  EXPECT_TRUE(message.f64("seconds").ok());        // valid (range checks are the caller's)
  ASSERT_TRUE(message.f64("ok").ok());
  EXPECT_DOUBLE_EQ(message.f64("ok").value(), 2.5);
}

TEST(WireMessages, ErrFramesCarryStructuredErrors) {
  const Error original = make_error(ErrorCode::timeout, "peer 127.0.0.1:9: recv timed out");
  auto parsed = WireMessage::parse(wire::error_payload(original));
  ASSERT_TRUE(parsed.ok());
  Error decoded;
  ASSERT_TRUE(wire::is_error(parsed.value(), decoded));
  EXPECT_EQ(decoded.code, ErrorCode::timeout);
  EXPECT_EQ(decoded.message, original.message);
  // Unknown code strings degrade to protocol instead of crashing.
  auto unknown = WireMessage::parse("ERR code=gremlins msg=what");
  ASSERT_TRUE(unknown.ok());
  ASSERT_TRUE(wire::is_error(unknown.value(), decoded));
  EXPECT_EQ(decoded.code, ErrorCode::protocol);
}

// --- seeded fuzz ------------------------------------------------------------

// Random byte soup and mutated valid frames: the decoder and message
// parser must classify every input as frame / need-more / error without
// crashing (ASan+UBSan in CI make memory errors loud).
TEST(WireFuzz, DecoderAndParserSurviveSeededGarbage) {
  std::mt19937 rng(0xE0F5EED);
  const std::string valid = wire::encode_frame("BWXFER to=127.0.0.1 port=4000 bytes=65536");
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    const int shape = static_cast<int>(rng() % 3);
    if (shape == 0) {  // raw garbage
      const std::size_t length = rng() % 64;
      for (std::size_t i = 0; i < length; ++i) {
        input.push_back(static_cast<char>(rng() % 256));
      }
    } else if (shape == 1) {  // truncated / extended valid frame
      input = valid.substr(0, rng() % (valid.size() + 1));
      const std::size_t extra = rng() % 8;
      for (std::size_t i = 0; i < extra; ++i) {
        input.push_back(static_cast<char>(rng() % 256));
      }
    } else {  // byte-flipped valid frame
      input = valid;
      const std::size_t flips = 1 + rng() % 4;
      for (std::size_t i = 0; i < flips && !input.empty(); ++i) {
        input[rng() % input.size()] = static_cast<char>(rng() % 256);
      }
    }
    FrameBuffer buffer;
    // Feed in random-sized pieces to exercise resumption points.
    std::size_t fed = 0;
    while (fed < input.size()) {
      const std::size_t piece = 1 + rng() % 16;
      buffer.feed(input.substr(fed, piece));
      fed += std::min(piece, input.size() - fed);
      auto decoded = buffer.next();
      if (!decoded.ok()) break;  // poisoned: classified as garbage, done
      if (decoded.value().has_value()) {
        // Whatever decoded must also parse or error cleanly.
        (void)WireMessage::parse(*decoded.value());
      }
    }
  }
}

// --- live agent robustness --------------------------------------------------

TEST(ProbeAgentProtocol, RepliesErrToGarbageWithoutDying) {
  SKIP_WITHOUT_NET();
  ProbeAgentConfig config;
  config.name = "h0";
  config.fqdn = "h0.lan";
  config.io_timeout_s = 5.0;
  ProbeAgent agent(config);
  ASSERT_TRUE(agent.start().ok());

  // Parseable frame, junk message: ERR reply, connection stays usable.
  {
    auto socket = wire::TcpSocket::dial("127.0.0.1", agent.port(), 2.0);
    ASSERT_TRUE(socket.ok());
    wire::FrameBuffer buffer;
    ASSERT_TRUE(wire::send_frame(socket.value(), "BOGUS key=value", 2.0).ok());
    auto reply = wire::recv_message(socket.value(), buffer, 2.0);
    ASSERT_TRUE(reply.ok()) << reply.error().to_string();
    Error error;
    EXPECT_TRUE(wire::is_error(reply.value(), error));
    EXPECT_EQ(error.code, ErrorCode::protocol);
    // Same connection still answers real requests.
    ASSERT_TRUE(wire::send_frame(socket.value(), "PING seq=1", 2.0).ok());
    auto pong = wire::recv_message(socket.value(), buffer, 2.0);
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong.value().type, "PONG");
  }
  // Unframeable bytes: one diagnostic ERR, then the agent hangs up.
  {
    auto socket = wire::TcpSocket::dial("127.0.0.1", agent.port(), 2.0);
    ASSERT_TRUE(socket.ok());
    wire::FrameBuffer buffer;
    ASSERT_TRUE(socket.value().send_all("total garbage, not a frame\n", 2.0).ok());
    auto reply = wire::recv_message(socket.value(), buffer, 2.0);
    if (reply.ok()) {
      Error error;
      EXPECT_TRUE(wire::is_error(reply.value(), error));
      auto eof = wire::recv_message(socket.value(), buffer, 2.0);
      EXPECT_FALSE(eof.ok());
    }
  }
  // The agent survived both abuses.
  {
    auto socket = wire::TcpSocket::dial("127.0.0.1", agent.port(), 2.0);
    ASSERT_TRUE(socket.ok());
    wire::FrameBuffer buffer;
    ASSERT_TRUE(wire::send_frame(socket.value(), "HELLO name=h0", 2.0).ok());
    auto reply = wire::recv_message(socket.value(), buffer, 2.0);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().type, "HELLO-OK");
    EXPECT_EQ(reply.value().get("fqdn"), "h0.lan");
  }
  agent.stop();
}

TEST(ProbeAgentProtocol, RejectsOutOfRangeBwxferFields) {
  SKIP_WITHOUT_NET();
  ProbeAgentConfig config;
  config.name = "h0";
  config.io_timeout_s = 5.0;
  ProbeAgent agent(config);
  ASSERT_TRUE(agent.start().ok());
  auto socket = wire::TcpSocket::dial("127.0.0.1", agent.port(), 2.0);
  ASSERT_TRUE(socket.ok());
  wire::FrameBuffer buffer;
  const char* bad_requests[] = {
      "BWXFER port=4000 bytes=1024",                        // missing 'to'
      "BWXFER to=127.0.0.1 port=0 bytes=1024",              // port 0
      "BWXFER to=127.0.0.1 port=99999 bytes=1024",          // port range
      "BWXFER to=127.0.0.1 port=4000 bytes=0",              // empty transfer
      "BWXFER to=127.0.0.1 port=4000 bytes=-1",             // negative bytes
      "BWXFER to=127.0.0.1 port=4000 bytes=99999999999999", // over bulk cap
      "BWXFER to=127.0.0.1 port=4000 bytes=1024 streams=0", // streams range
      "BULK bytes=banana",                                  // junk numeric
  };
  for (const char* request : bad_requests) {
    ASSERT_TRUE(wire::send_frame(socket.value(), request, 2.0).ok()) << request;
    auto reply = wire::recv_message(socket.value(), buffer, 2.0);
    ASSERT_TRUE(reply.ok()) << request;
    Error error;
    EXPECT_TRUE(wire::is_error(reply.value(), error)) << request;
    EXPECT_EQ(error.code, ErrorCode::protocol) << request;
  }
  agent.stop();
}

// A scripted server speaking syntactically valid frames with junk
// CONTENT: the engine must classify every reply as a protocol error.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::vector<std::string> reply_payloads)
      : replies_(std::move(reply_payloads)) {}

  ~ScriptedServer() { stop(); }

  bool start() {
    auto listener = wire::TcpListener::listen("127.0.0.1", 0);
    if (!listener.ok()) return false;
    listener_ = std::move(listener.value());
    thread_ = std::thread([this] { serve(); });
    return true;
  }

  void stop() {
    stopping_ = true;
    listener_.close_fd();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

 private:
  void serve() {
    std::size_t next = 0;
    while (!stopping_ && next < replies_.size()) {
      auto accepted = listener_.accept(0.25);
      if (!accepted.ok()) {
        if (accepted.error().code == ErrorCode::timeout) continue;
        return;
      }
      wire::TcpSocket socket = std::move(accepted.value());
      wire::FrameBuffer buffer;
      while (next < replies_.size()) {
        auto request = wire::recv_frame(socket, buffer, 5.0);
        if (!request.ok()) break;  // engine dropped the pooled conn
        if (!wire::send_frame(socket, replies_[next++], 5.0).ok()) break;
      }
    }
  }

  std::vector<std::string> replies_;
  wire::TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

TEST(SocketEngineProtocol, JunkAgentRepliesBecomeProtocolErrors) {
  SKIP_WITHOUT_NET();
  ScriptedServer server({
      "WAT fqdn=x",                                        // wrong reply type to HELLO
      "HELLO-OK fqdn=h0 ip=1.2.3.4 props=broken-token",    // bad props grammar
      "BWXFER-OK bps=banana seconds=0.5 bytes=65536",      // junk numeric
      "BWXFER-OK bps=-1 seconds=0.5 bytes=65536",          // non-positive measurement
  });
  ASSERT_TRUE(server.start());
  AgentRoster roster;
  roster.agents.push_back(wire::AgentEndpoint{"h0", "127.0.0.1", server.port()});
  roster.agents.push_back(wire::AgentEndpoint{"h1", "127.0.0.1", server.port()});
  MapperOptions options;
  options.stabilization_gap_s = 0.0;
  options.probe_bytes = 65536;
  SocketEngineOptions socket_options;
  socket_options.connect_timeout_s = 2.0;
  socket_options.frame_timeout_s = 2.0;
  socket_options.transfer_timeout_s = 2.0;
  SocketProbeEngine engine(roster, options, socket_options);

  auto wrong_type = engine.lookup("h0");
  ASSERT_FALSE(wrong_type.ok());
  EXPECT_EQ(wrong_type.error().code, ErrorCode::protocol);

  auto bad_props = engine.lookup("h0");
  ASSERT_FALSE(bad_props.ok());
  EXPECT_EQ(bad_props.error().code, ErrorCode::protocol);

  auto junk_bps = engine.bandwidth("h0", "h1");
  ASSERT_FALSE(junk_bps.ok());
  EXPECT_EQ(junk_bps.error().code, ErrorCode::protocol);

  auto negative = engine.bandwidth("h0", "h1");
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.error().code, ErrorCode::protocol);
  server.stop();
}

}  // namespace
}  // namespace envnws::env
