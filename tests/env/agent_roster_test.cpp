// Agent roster parsing (env/probe_wire.hpp): the operator-authored
// `<host> <ipv4>:<port>` file SocketProbeEngine finds its agents
// through. Malformed lines must come back as line-numbered Result
// errors — the PR 4 parse-hardening pattern — never as exceptions or
// silently skipped entries.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "env/probe_wire.hpp"

namespace envnws::env::wire {
namespace {

TEST(AgentRoster, ParsesHostsCommentsAndBlankLines) {
  const std::string text =
      "# loopback fleet\n"
      "master 127.0.0.1:4000\n"
      "\n"
      "h0\t127.0.0.1:4001   # tabs and trailing comments are fine\n"
      "  h1   10.0.0.7:65535\n";
  auto roster = AgentRoster::parse(text, "agents.cfg");
  ASSERT_TRUE(roster.ok()) << roster.error().to_string();
  ASSERT_EQ(roster.value().agents.size(), 3u);
  EXPECT_EQ(roster.value().agents[0].host, "master");  // file order preserved
  EXPECT_EQ(roster.value().agents[1].host, "h0");
  EXPECT_EQ(roster.value().agents[1].address, "127.0.0.1");
  EXPECT_EQ(roster.value().agents[1].port, 4001);
  EXPECT_EQ(roster.value().agents[2].address, "10.0.0.7");
  EXPECT_EQ(roster.value().agents[2].port, 65535);

  const AgentEndpoint* found = roster.value().find("h1");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->port, 65535);
  EXPECT_EQ(roster.value().find("nope"), nullptr);
}

TEST(AgentRoster, RoundTripsThroughToString) {
  auto roster = AgentRoster::parse("a 127.0.0.1:1\nb 127.0.0.2:2\n");
  ASSERT_TRUE(roster.ok());
  auto again = AgentRoster::parse(roster.value().to_string());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().agents.size(), 2u);
  EXPECT_EQ(again.value().agents[1].host, "b");
  EXPECT_EQ(again.value().agents[1].address, "127.0.0.2");
}

TEST(AgentRoster, RejectsMalformedLinesWithLineNumbers) {
  struct Case {
    const char* text;
    int line;        ///< the offending 1-based line
    const char* needle;
  };
  const Case cases[] = {
      {"h0 127.0.0.1:4000\nh1\n", 2, "missing address"},
      {"h0 127.0.0.1\n", 1, "missing port"},
      {"h0 127.0.0.1:4000 extra\n", 1, "trailing tokens"},
      {"h0 :4000\n", 1, "bad address"},
      {"h0 localhost:4000\n", 1, "bad address"},         // numeric IPv4 required
      {"h0 999.0.0.1:4000\n", 1, "bad address"},
      {"h0 127.0.0.1:\n", 1, "bad port"},
      {"h0 127.0.0.1:zero\n", 1, "bad port"},
      {"h0 127.0.0.1:0\n", 1, "bad port"},
      {"h0 127.0.0.1:70000\n", 1, "bad port"},
      {"h0 127.0.0.1:-1\n", 1, "bad port"},              // no stoull wraparound
      {"h0 127.0.0.1:99999999999999999999\n", 1, "bad port"},
      {"# fine\nh0 127.0.0.1:1\nh0 127.0.0.1:2\n", 3, "duplicate host"},
  };
  for (const Case& c : cases) {
    auto roster = AgentRoster::parse(c.text, "agents.cfg");
    ASSERT_FALSE(roster.ok()) << c.text;
    EXPECT_EQ(roster.error().code, ErrorCode::invalid_argument) << c.text;
    const std::string expected_prefix = "agents.cfg:" + std::to_string(c.line) + ":";
    EXPECT_NE(roster.error().message.find(expected_prefix), std::string::npos)
        << roster.error().message;
    EXPECT_NE(roster.error().message.find(c.needle), std::string::npos)
        << roster.error().message;
  }
}

TEST(AgentRoster, LoadReportsMissingFileAsNotFound) {
  auto roster = AgentRoster::load("/definitely/not/there/agents.cfg");
  ASSERT_FALSE(roster.ok());
  EXPECT_EQ(roster.error().code, ErrorCode::not_found);
}

TEST(AgentRoster, LoadParsesARealFileAndNamesItInErrors) {
  namespace fs = std::filesystem;
  const std::string path = (fs::path(::testing::TempDir()) / "roster-load.cfg").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "h0 127.0.0.1:4000\nbroken-line\n";
  }
  auto roster = AgentRoster::load(path);
  ASSERT_FALSE(roster.ok());
  EXPECT_EQ(roster.error().code, ErrorCode::invalid_argument);
  // The error is anchored to the file AND the line.
  EXPECT_NE(roster.error().message.find(path + ":2:"), std::string::npos)
      << roster.error().message;

  {
    std::ofstream out(path, std::ios::trunc);
    out << "h0 127.0.0.1:4000\n";
  }
  auto good = AgentRoster::load(path);
  ASSERT_TRUE(good.ok()) << good.error().to_string();
  EXPECT_EQ(good.value().source, path);
  ASSERT_EQ(good.value().agents.size(), 1u);
}

}  // namespace
}  // namespace envnws::env::wire
