// Paper §4.3 "Machines without hostname": "some hosts have no configured
// name and their IP appear in the traceroute result. ... we modified ENV
// to simply use IP address class if IP resolution fails. We also modified
// ENV to support non-routable IPs."
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "env/mapper.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/topology.hpp"

namespace envnws::env {
namespace {

using units::mbps;

/// Three hosts on a hub: one with proper DNS, two nameless (IP only),
/// one of them on a non-routable (RFC1918) address.
simnet::Topology nameless_lan() {
  simnet::Topology topo;
  const auto named = topo.add_host("named", "named.example.org", simnet::Ipv4(140, 77, 5, 1));
  const auto bare = topo.add_host("bare", "", simnet::Ipv4(140, 77, 5, 2));
  const auto priv = topo.add_host("priv", "", simnet::Ipv4(192, 168, 7, 3));
  const auto hub = topo.add_hub("hub", mbps(100));
  for (const auto host : {named, bare, priv}) topo.connect(host, hub, mbps(100), 50e-6);
  return topo;
}

TEST(UnnamedHosts, IpClassFallbackGroupsSites) {
  simnet::Network net(nameless_lan());
  MapperOptions options;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  ZoneSpec spec;
  spec.zone_name = "default";
  // The operator can only list nameless machines by address.
  spec.hostnames = {"named.example.org", "bare", "priv"};
  spec.master = "named.example.org";
  spec.traceroute_target = "named.example.org";
  auto result = mapper.map_zone(spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  // Sites: example.org for the named host; the classful networks
  // 140.77.0.0 (class B) and 192.168.7.0 (class C, non-routable but
  // KEPT, per the paper's second fix) for the nameless ones.
  std::vector<std::string> domains;
  for (const auto& site : result.value().grid.sites) domains.push_back(site.domain);
  EXPECT_NE(std::find(domains.begin(), domains.end(), "example.org"), domains.end());
  EXPECT_NE(std::find(domains.begin(), domains.end(), "140.77.0.0"), domains.end());
  EXPECT_NE(std::find(domains.begin(), domains.end(), "192.168.7.0"), domains.end());

  // The machines are identified by their IP where DNS failed.
  EXPECT_NE(result.value().grid.find_machine("140.77.5.2"), nullptr);
  EXPECT_NE(result.value().grid.find_machine("192.168.7.3"), nullptr);

  // And the mapping itself still works: one shared segment of 3.
  const auto segments = result.value().root.lan_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0]->kind, NetKind::shared);
  EXPECT_EQ(segments[0]->machines.size(), 3u);
}

TEST(UnnamedHosts, NonRoutableRootKeptInStructuralTree) {
  // The ENS-Lyon structural tree roots at 192.168.254.1: "the root of
  // the structural topology ... is a non-routable IP, but dropping this
  // information may badly impact the mapping quality".
  std::vector<HostTrace> traces{
      HostTrace{"a.lan",
                {TraceHop{"10.0.0.1", "", true}, TraceHop{"192.168.254.1", "", true}}},
      HostTrace{"b.lan",
                {TraceHop{"10.0.0.2", "", true}, TraceHop{"192.168.254.1", "", true}}}};
  const StructuralNode root = build_structural_tree(traces);
  EXPECT_EQ(root.ip, "192.168.254.1");
  EXPECT_EQ(root.children.size(), 2u);  // two distinct branches preserved
}

}  // namespace
}  // namespace envnws::env
