// The first quantitative sim-vs-real calibration (link_model.hpp).
//
// The "real" side is the committed golden trace
// tests/data/traces/socket-star-6-tcp.envtrace: a REAL loopback agent
// fleet, paced at 1 Gbps with the lv08 TCP correction applied to its
// deterministic timing (payloads extract 97% of the raw rate), recorded
// via
//
//   $ ./examples/record_trace star-switch:6@1000 \
//       tests/data/traces/socket-star-6-tcp.envtrace --fleet-tcp
//
// The "sim" side is Network::predicted_rates() — the steady-state
// fair-share solve the simulator would grant those same transfers — on
// the SAME platform spec, once under the `tcp-lv08:` link model and
// once under the default `ideal` model. The calibration contract:
//
//   * tcp-lv08 predicts every measured bandwidth in the trace within
//     kLv08Tolerance (the model was built to explain exactly this
//     correction, so the residual is rounding only);
//   * ideal does NOT tighten — its worst-case error against the same
//     measurements stays above kIdealFloor (~3%: the usable-fraction
//     gap the lv08 model exists to close). A refactor that silently
//     "improves" ideal into fitting TCP data has broken the bit-exact
//     default contract somewhere else;
//   * ideal still fits the PLAIN paced fleet (socket-star-6.envtrace),
//     so the error split is attributable to TCP, not to the harness.
//
// A live-fleet variant re-derives the "real" side from scratch against
// freshly spawned agents (skipped under ENVNWS_TEST_NO_NET=1), so the
// committed trace itself stays auditable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/scenario_registry.hpp"
#include "env/probe_agent.hpp"
#include "env/socket_probe_engine.hpp"
#include "env/trace_probe_engine.hpp"
#include "simnet/network.hpp"

namespace envnws::env {
namespace {

namespace fs = std::filesystem;

const fs::path kTraceDir = fs::path(ENVNWS_TEST_DATA_DIR) / "traces";

/// lv08 must explain the TCP-paced measurements to rounding precision.
constexpr double kLv08Tolerance = 0.005;
/// ...while ideal must keep missing them by at least the usable-fraction
/// gap (1 - 0.97 ≈ 3%; floor set below it for slack).
constexpr double kIdealFloor = 0.02;

bool no_net() {
  const char* flag = std::getenv("ENVNWS_TEST_NO_NET");
  return flag != nullptr && std::string(flag) == "1";
}

/// One steady-state bandwidth observation: the transfers that ran
/// together and what each of them measured.
struct Observation {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<double> measured_bps;
};

/// Every successful bandwidth / concurrent record of a trace. Lookup and
/// traceroute records carry no rates and are skipped.
std::vector<Observation> bandwidth_observations(const ProbeTrace& trace) {
  std::vector<Observation> observations;
  for (const TraceRecord& record : trace.records) {
    if (record.kind != TraceRecord::Kind::bandwidth &&
        record.kind != TraceRecord::Kind::concurrent) {
      continue;
    }
    Observation observation;
    for (const TraceRecord::Entry& entry : record.entries) {
      if (!entry.ok) continue;
      observation.pairs.emplace_back(entry.from, entry.to);
      observation.measured_bps.push_back(entry.bandwidth_bps);
    }
    if (!observation.pairs.empty()) observations.push_back(std::move(observation));
  }
  return observations;
}

/// Worst relative error of `spec`'s predicted steady-state rates against
/// the observations. Fails the test on any resolution/solve error.
double max_relative_error(const std::string& spec, const std::vector<Observation>& observations) {
  auto scenario = api::ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(scenario.ok()) << spec << ": " << scenario.error().to_string();
  if (!scenario.ok()) return 0.0;
  simnet::Network net(std::move(scenario.value().topology));
  double worst = 0.0;
  for (const Observation& observation : observations) {
    std::vector<std::pair<simnet::NodeId, simnet::NodeId>> pairs;
    for (const auto& [from, to] : observation.pairs) {
      auto src = net.topology().find_host_by_fqdn(from);
      auto dst = net.topology().find_host_by_fqdn(to);
      EXPECT_TRUE(src.ok() && dst.ok()) << from << " -> " << to;
      if (!src.ok() || !dst.ok()) return 0.0;
      pairs.emplace_back(src.value(), dst.value());
    }
    auto predicted = net.predicted_rates(pairs);
    EXPECT_TRUE(predicted.ok()) << predicted.error().to_string();
    if (!predicted.ok()) return 0.0;
    for (std::size_t i = 0; i < observation.measured_bps.size(); ++i) {
      const double measured = observation.measured_bps[i];
      if (measured <= 0.0) continue;
      worst = std::max(worst, std::fabs(predicted.value()[i] - measured) / measured);
    }
  }
  return worst;
}

TEST(Calibration, Lv08ExplainsTheTcpPacedFleetWhereIdealCannot) {
  const fs::path path = kTraceDir / "socket-star-6-tcp.envtrace";
  ASSERT_TRUE(fs::exists(path))
      << "calibration trace missing: " << path
      << "\nre-record with: ./build/examples/record_trace star-switch:6@1000 " << path
      << " --fleet-tcp";
  auto trace = ProbeTrace::load(path.string());
  ASSERT_TRUE(trace.ok()) << trace.error().to_string();

  const std::vector<Observation> observations = bandwidth_observations(trace.value());
  // 15 pairwise B records + 10 same-source and 5 disjoint C batches.
  ASSERT_GE(observations.size(), 30u);

  const double lv08 = max_relative_error("tcp-lv08:star-switch:6@1000", observations);
  const double ideal = max_relative_error("star-switch:6@1000", observations);
  EXPECT_LE(lv08, kLv08Tolerance) << "tcp-lv08 no longer explains the measured fleet";
  EXPECT_GE(ideal, kIdealFloor) << "ideal fits TCP data: the default model is no longer ideal";
  // And lv08 is strictly the better explanation, by a wide margin.
  EXPECT_LT(lv08 * 2.0, ideal);
}

TEST(Calibration, IdealExplainsThePlainPacedFleet) {
  // Control: against the UNcorrected paced fleet the ideal model is the
  // right one — the lv08/ideal split above measures TCP, not the rig.
  const fs::path path = kTraceDir / "socket-star-6.envtrace";
  ASSERT_TRUE(fs::exists(path)) << "golden socket trace missing: " << path;
  auto trace = ProbeTrace::load(path.string());
  ASSERT_TRUE(trace.ok()) << trace.error().to_string();

  const std::vector<Observation> observations = bandwidth_observations(trace.value());
  ASSERT_GE(observations.size(), 30u);
  // The plain fleet paces at the default 1 Gbps = star-switch:6@1000.
  EXPECT_LE(max_relative_error("star-switch:6@1000", observations), kLv08Tolerance);
}

TEST(Calibration, LiveTcpFleetMatchesLv08Predictions) {
  if (no_net()) GTEST_SKIP() << "ENVNWS_TEST_NO_NET=1 set";

  // A fresh 3-host TCP-paced fleet: 1 Gbps raw, 97% usable — the same
  // rig that recorded the committed trace, rebuilt from nothing.
  constexpr double kRate = 1e9;
  std::vector<std::unique_ptr<ProbeAgent>> fleet;
  wire::AgentRoster roster;
  for (const char* name : {"h0.lan", "h1.lan", "h2.lan"}) {
    ProbeAgentConfig config;
    config.name = name;
    config.fqdn = name;
    config.fixed_rate_bps = kRate;
    config.usable_fraction = 0.97;
    fleet.push_back(std::make_unique<ProbeAgent>(std::move(config)));
    ASSERT_TRUE(fleet.back()->start().ok()) << name;
    roster.agents.push_back(wire::AgentEndpoint{name, "127.0.0.1", fleet.back()->port()});
  }
  MapperOptions options;
  options.probe_bytes = 64 * 1024;
  options.stabilization_gap_s = 0.0;
  SocketProbeEngine engine(roster, options);

  std::vector<Observation> observations;
  auto solo = engine.bandwidth("h0.lan", "h1.lan");
  ASSERT_TRUE(solo.ok()) << solo.error().to_string();
  observations.push_back({{{"h0.lan", "h1.lan"}}, {solo.value()}});
  auto shared = engine.concurrent_bandwidth(
      {BandwidthRequest{"h0.lan", "h1.lan"}, BandwidthRequest{"h0.lan", "h2.lan"}});
  ASSERT_EQ(shared.size(), 2u);
  Observation concurrent;
  for (std::size_t i = 0; i < shared.size(); ++i) {
    ASSERT_TRUE(shared[i].ok()) << shared[i].error().to_string();
    concurrent.pairs.emplace_back("h0.lan", i == 0 ? "h1.lan" : "h2.lan");
    concurrent.measured_bps.push_back(shared[i].value());
  }
  observations.push_back(std::move(concurrent));
  for (auto& agent : fleet) agent->stop();

  EXPECT_LE(max_relative_error("tcp-lv08:star-switch:3@1000", observations), kLv08Tolerance);
  EXPECT_GE(max_relative_error("star-switch:3@1000", observations), kIdealFloor);
}

}  // namespace
}  // namespace envnws::env
