// Mapper behaviour against simulated platforms with known ground truth.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/scenario.hpp"

namespace envnws::env {
namespace {

using simnet::GroundTruthNet;
using units::mbps;

ZoneMapResult map_single_zone(simnet::Network& net, const simnet::Scenario& scenario,
                              MapperOptions options = {}) {
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  const auto zones = zones_from_scenario(scenario);
  EXPECT_TRUE(zones.ok());
  EXPECT_EQ(zones.value().size(), 1u);
  auto result = mapper.map_zone(zones.value().front());
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return result.value();
}

TEST(MapperSim, StarHubClassifiedShared) {
  auto scenario = simnet::star_hub(5, mbps(100));
  simnet::Network net(scenario.topology);
  const auto result = map_single_zone(net, scenario);
  const auto segments = result.root.lan_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0]->kind, NetKind::shared);
  EXPECT_EQ(segments[0]->machines.size(), 5u);  // master included
  EXPECT_NEAR(segments[0]->base_bw_bps, mbps(100), mbps(3));
  EXPECT_NEAR(segments[0]->base_local_bw_bps, mbps(100), mbps(3));
}

TEST(MapperSim, StarSwitchClassifiedSwitched) {
  auto scenario = simnet::star_switch(5, mbps(100));
  simnet::Network net(scenario.topology);
  const auto result = map_single_zone(net, scenario);
  const auto segments = result.root.lan_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0]->kind, NetKind::switched);
  EXPECT_NEAR(segments[0]->base_local_bw_bps, mbps(100), mbps(3));
}

TEST(MapperSim, TwoHostHubPairStillDetectedShared) {
  // Size-2 cluster: the jam experiment uses the A->B fallback.
  auto scenario = simnet::star_hub(2, mbps(10));
  simnet::Network net(scenario.topology);
  const auto result = map_single_zone(net, scenario);
  const auto segments = result.root.lan_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0]->kind, NetKind::shared);
}

TEST(MapperSim, TwoHostSwitchPairDetectedSwitched) {
  auto scenario = simnet::star_switch(2, mbps(100));
  simnet::Network net(scenario.topology);
  const auto result = map_single_zone(net, scenario);
  const auto segments = result.root.lan_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0]->kind, NetKind::switched);
}

TEST(MapperSim, DumbbellSplitsByBandwidthRatio) {
  // Left cluster at 100 Mbps port speed, right reachable through a
  // 10 Mbps bottleneck: the x3 host-bandwidth rule separates them even
  // before structure, and the tree keeps them in distinct branches.
  auto scenario = simnet::dumbbell(3, 3, mbps(100), mbps(10));
  simnet::Network net(scenario.topology);
  const auto result = map_single_zone(net, scenario);
  const auto segments = result.root.lan_segments();
  ASSERT_GE(segments.size(), 2u);
  // Find the remote cluster: base bw ~10, local ~100.
  bool found_remote = false;
  for (const auto* segment : segments) {
    if (segment->base_bw_bps < mbps(15)) {
      found_remote = true;
      EXPECT_GT(segment->base_local_bw_bps, mbps(90));
      EXPECT_EQ(segment->machines.size(), 3u);
    }
  }
  EXPECT_TRUE(found_remote);
}

TEST(MapperSim, MapperStatsAccountExperiments) {
  auto scenario = simnet::star_hub(4, mbps(100));
  simnet::Network net(scenario.topology);
  const auto result = map_single_zone(net, scenario);
  EXPECT_GT(result.stats.experiments, 5u);
  EXPECT_GT(result.stats.bytes_sent, 0);
  EXPECT_GT(result.stats.duration_s, 0.0);
}

TEST(MapperSim, GridmlOutputCarriesEnvProperties) {
  auto scenario = simnet::star_hub(3, mbps(100));
  simnet::Network net(scenario.topology);
  const auto result = map_single_zone(net, scenario);
  const std::string xml = result.grid.to_string();
  EXPECT_NE(xml.find("ENV_Shared"), std::string::npos);
  EXPECT_NE(xml.find("ENV_base_BW"), std::string::npos);
  EXPECT_NE(xml.find("h1.lan"), std::string::npos);
  // Host inventory captured (phase 4.2.1.2 properties are only present
  // when the scenario decorates hosts; the lan family does not, so just
  // check the SITE skeleton).
  EXPECT_NE(xml.find("<SITE domain=\"lan\""), std::string::npos);
}

TEST(MapperSim, MasterAbsentFromHostListIsAnError) {
  auto scenario = simnet::star_hub(3, mbps(100));
  simnet::Network net(scenario.topology);
  MapperOptions options;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  ZoneSpec spec;
  spec.zone_name = "default";
  spec.hostnames = {"h0.lan", "h1.lan"};
  spec.master = "nonexistent";
  spec.traceroute_target = "h0.lan";
  EXPECT_FALSE(mapper.map_zone(spec).ok());
}

TEST(MapperSim, UnknownHostnameBecomesWarningNotFailure) {
  auto scenario = simnet::star_hub(3, mbps(100));
  simnet::Network net(scenario.topology);
  MapperOptions options;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  ZoneSpec spec;
  spec.zone_name = "default";
  spec.hostnames = {"h0.lan", "h1.lan", "ghost.lan"};
  spec.master = "h0.lan";
  spec.traceroute_target = "h1.lan";
  const auto result = mapper.map_zone(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().warnings.empty());
}

TEST(MapperSim, VlanLabSeesLogicalNotPhysicalTopology) {
  // One physical chassis, two VLANs: ENV must report two independent
  // switched segments (the logical view), not one.
  auto scenario = simnet::vlan_lab(3, 2, mbps(100));
  simnet::Network net(scenario.topology);
  const auto result = map_single_zone(net, scenario);
  const auto segments = result.root.lan_segments();
  ASSERT_EQ(segments.size(), 2u);
  for (const auto* segment : segments) {
    EXPECT_EQ(segment->kind, NetKind::switched);
    EXPECT_EQ(segment->machines.size(), 3u);
  }
}

TEST(MapperSim, ThresholdInjectionChangesVerdict) {
  // With an absurd jam_shared_max of 0.0 nothing can be "shared".
  auto scenario = simnet::star_hub(4, mbps(100));
  simnet::Network net(scenario.topology);
  MapperOptions options;
  options.jam_shared_max = 0.0;
  options.jam_switched_min = 0.0;  // everything >= 0 becomes switched
  const auto result = map_single_zone(net, scenario, options);
  const auto segments = result.root.lan_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0]->kind, NetKind::switched);
}

TEST(MapperSim, InconclusiveBandIsRespected) {
  // Thresholds arranged so the observed jam ratio (~0.5 on a hub) falls
  // in the inconclusive band.
  auto scenario = simnet::star_hub(4, mbps(100));
  simnet::Network net(scenario.topology);
  MapperOptions options;
  options.jam_shared_max = 0.2;
  options.jam_switched_min = 0.9;
  const auto result = map_single_zone(net, scenario, options);
  const auto segments = result.root.lan_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0]->kind, NetKind::inconclusive);
}

// --- property: ground-truth accuracy over a randomized family ------------

struct AccuracyCase {
  std::uint64_t seed;
};

class RandomLanAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLanAccuracy, DefaultThresholdsClassifyEverySegmentCorrectly) {
  auto scenario = simnet::random_lan(GetParam());
  simnet::Network net(scenario.topology);
  const auto result = map_single_zone(net, scenario);

  const simnet::NodeId master = net.topology().find_by_name(scenario.master).value();
  for (const auto& truth : scenario.ground_truth) {
    if (truth.member_names.size() < 2) continue;
    // Find the segment containing the first member.
    const std::string fqdn = truth.member_names.front() + ".lan";
    const EnvNetwork* segment = result.root.find_containing(fqdn);
    ASSERT_NE(segment, nullptr) << fqdn << " not mapped";
    const NetKind expected = truth.kind == GroundTruthNet::Kind::shared
                                 ? NetKind::shared
                                 : NetKind::switched;
    // Known methodology limitation (the paper's own hub2 case): when the
    // master reaches a shared segment through a bottleneck narrower than
    // ~the medium, the jam flow fits in the residual capacity and the
    // hub masquerades as switched from this viewpoint. The ENS-Lyon run
    // recovers via the second-zone merge; a single-zone map cannot.
    const simnet::NodeId member =
        net.topology().find_by_name(truth.member_names.front()).value();
    const double reachable_bw = net.ground_truth_bandwidth(master, member).value();
    const bool masked = truth.kind == GroundTruthNet::Kind::shared &&
                        reachable_bw < 0.75 * truth.local_bw_bps;
    if (!masked) {
      EXPECT_EQ(segment->kind, expected)
          << "segment of " << fqdn << " misclassified (seed " << GetParam() << ")";
    }
    // Internal (member-to-member) bandwidth is measured inside the
    // segment and stays accurate regardless of the master's viewpoint.
    EXPECT_NEAR(segment->base_local_bw_bps, truth.local_bw_bps, truth.local_bw_bps * 0.06);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLanAccuracy,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace envnws::env
