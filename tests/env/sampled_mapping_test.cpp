// Hierarchical sampled interrogation (MapperOptions::max_pairwise):
// the digest contract — max_pairwise=0 is bit-identical to the paper's
// full protocol, and a sampled run is a pure deterministic function of
// (spec, sample_seed) independent of probe_jobs — plus the experiment
// budget and the SampleStats accounting.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "api/envnws.hpp"
#include "common/units.hpp"
#include "env/mapper.hpp"
#include "env/scenario_zones.hpp"
#include "env/sim_probe_engine.hpp"
#include "simnet/network.hpp"
#include "simnet/scenario.hpp"

namespace envnws::env {
namespace {

simnet::Scenario make_scenario(const std::string& spec) {
  auto made = api::ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(made.ok()) << spec;
  return std::move(made.value());
}

/// Full multi-zone map of `spec` with the given sampling knobs.
MapResult map_with(const std::string& spec, int max_pairwise, std::uint64_t sample_seed,
                   int probe_jobs = 1) {
  const simnet::Scenario scenario = make_scenario(spec);
  simnet::Network net(simnet::Scenario(scenario).topology);
  MapperOptions options;
  options.max_pairwise = max_pairwise;
  options.sample_seed = sample_seed;
  options.probe_jobs = probe_jobs;
  SimProbeEngine engine(net, options);
  Mapper mapper(engine, options);
  const auto zones = zones_from_scenario(scenario);
  EXPECT_TRUE(zones.ok());
  auto result = mapper.map(zones.value());
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  return std::move(result.value());
}

TEST(SampledMapping, ZeroBudgetIsBitIdenticalToTheFullProtocol) {
  const MapResult full = map_with("star-switch:16@100", 0, 1);
  // An explicit budget large enough for every pair never triggers
  // sampling either: C(15,2) = 105 pairwise experiments fit in 200.
  const MapResult roomy = map_with("star-switch:16@100", 200, 1);
  EXPECT_EQ(full.identity_digest(), roomy.identity_digest());
  EXPECT_EQ(full.stats.experiments, roomy.stats.experiments);
  EXPECT_EQ(roomy.sampling.sampled_groups, 0u);
  EXPECT_EQ(roomy.sampling.representatives, 0u);

  // The seed is dead weight outside sampled mode: full interrogation
  // never consults it.
  const MapResult reseeded = map_with("star-switch:16@100", 0, 0xfeedULL);
  EXPECT_EQ(full.identity_digest(), reseeded.identity_digest());
}

TEST(SampledMapping, BudgetBoundsExperimentsAndAccountsEveryMember) {
  const MapResult full = map_with("star-switch:16@100", 0, 1);
  const MapResult sampled = map_with("star-switch:16@100", 8, 1);

  // The budget genuinely cut probing: the full run's 105 2b pairs (and
  // 105 2c internal pairs) collapse to the representative clique plus
  // per-member refinement.
  EXPECT_LT(sampled.stats.experiments, full.stats.experiments);
  EXPECT_EQ(sampled.sampling.sampled_groups, 1u);
  EXPECT_GT(sampled.sampling.representatives, 0u);
  // Every non-representative member is either inferred or escalated.
  EXPECT_EQ(sampled.sampling.representatives + sampled.sampling.inferred_members +
                sampled.sampling.escalated_members,
            15u);
  // A uniform star gives sampling no reason to distrust its buckets.
  EXPECT_EQ(sampled.sampling.escalated_members, 0u);
  // 2c sampling engaged too: the switched segment has 120 member pairs.
  EXPECT_GT(sampled.sampling.sampled_clusters, 0u);
  EXPECT_LE(sampled.sampling.sampled_internal_pairs, 8u);

  // The sampled tree still finds the same structure: one switched
  // segment holding all 16 machines.
  const auto segments = sampled.root.lan_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments.front()->kind, NetKind::switched);
  EXPECT_EQ(segments.front()->machines.size(), 16u);
}

TEST(SampledMapping, SampledDigestIsAPureFunctionOfSpecAndSeed) {
  const MapResult first = map_with("star-switch:16@100", 8, 42);
  const MapResult again = map_with("star-switch:16@100", 8, 42);
  EXPECT_EQ(first.identity_digest(), again.identity_digest());
  EXPECT_EQ(first.stats.experiments, again.stats.experiments);

  // probe_jobs schedules the same experiments differently; it must
  // never change which experiments the sampler picks, nor the result.
  const MapResult batched = map_with("star-switch:16@100", 8, 42, 8);
  EXPECT_EQ(first.identity_digest(), batched.identity_digest());
}

TEST(SampledMapping, MultiZonePlatformsSampleEachZoneIndependently) {
  // Every private firewall zone exceeds the budget on its own; the
  // merged result stays deterministic and accounts per-zone stats.
  const MapResult first = map_with("multi-firewall:2x12@100/100", 6, 7);
  const MapResult again = map_with("multi-firewall:2x12@100/100", 6, 7);
  EXPECT_EQ(first.identity_digest(), again.identity_digest());
  EXPECT_GT(first.sampling.sampled_groups, 0u);

  const MapResult batched = map_with("multi-firewall:2x12@100/100", 6, 7, 8);
  EXPECT_EQ(first.identity_digest(), batched.identity_digest());
}

}  // namespace
}  // namespace envnws::env
