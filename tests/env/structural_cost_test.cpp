#include <gtest/gtest.h>

#include "env/cost_model.hpp"
#include "env/structural.hpp"

namespace envnws::env {
namespace {

TEST(Structural, BuildsPaperFig2Tree) {
  // Hop lists as traceroute reports them: host-side first, target last.
  std::vector<HostTrace> traces;
  const auto hop = [](const std::string& ip, const std::string& name) {
    return TraceHop{ip, name, true};
  };
  for (const std::string host : {"the-doors.ens-lyon.fr", "canaria.ens-lyon.fr",
                                 "moby.cri2000.ens-lyon.fr"}) {
    traces.push_back(
        HostTrace{host, {hop("140.77.13.1", ""), hop("192.168.254.1", "")}});
  }
  for (const std::string host :
       {"myri.ens-lyon.fr", "popc.ens-lyon.fr", "sci.ens-lyon.fr"}) {
    traces.push_back(HostTrace{host,
                               {hop("140.77.12.1", "routlhpc"),
                                hop("140.77.161.1", "routeur-backbone"),
                                hop("192.168.254.1", "")}});
  }

  const StructuralNode root = build_structural_tree(traces);
  EXPECT_EQ(root.ip, "192.168.254.1");
  ASSERT_EQ(root.children.size(), 2u);
  const StructuralNode& r13 = root.children[0];
  EXPECT_EQ(r13.ip, "140.77.13.1");
  EXPECT_EQ(r13.machines.size(), 3u);
  const StructuralNode& backbone = root.children[1];
  EXPECT_EQ(backbone.name, "routeur-backbone");
  ASSERT_EQ(backbone.children.size(), 1u);
  EXPECT_EQ(backbone.children[0].name, "routlhpc");
  EXPECT_EQ(backbone.children[0].machines.size(), 3u);
  EXPECT_EQ(root.machine_count(), 6u);
}

TEST(Structural, SilentHopsAreSkipped) {
  std::vector<HostTrace> traces{
      HostTrace{"a.lan",
                {TraceHop{"10.0.0.1", "", true}, TraceHop{"*", "", false},
                 TraceHop{"10.0.0.254", "edge", true}}},
      HostTrace{"b.lan",
                {TraceHop{"10.0.0.1", "", true}, TraceHop{"10.0.0.254", "edge", true}}}};
  const StructuralNode root = build_structural_tree(traces);
  EXPECT_EQ(root.ip, "10.0.0.254");
  // Both hosts cluster under the same branch despite the dropped hop.
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].machines.size(), 2u);
}

TEST(Structural, EmptyTraceAttachesAtRoot) {
  std::vector<HostTrace> traces{
      HostTrace{"master.lan", {}},
      HostTrace{"other.lan", {TraceHop{"10.0.0.254", "gw", true}}}};
  const StructuralNode root = build_structural_tree(traces);
  EXPECT_EQ(root.ip, "10.0.0.254");
  // master (no hops) and other (target only) both live at the root.
  EXPECT_EQ(root.machines.size(), 2u);
  EXPECT_TRUE(root.children.empty());
}

TEST(Structural, NameBackfilledWhenLaterTraceResolvesIt) {
  std::vector<HostTrace> traces{
      HostTrace{"a.lan", {TraceHop{"10.0.0.1", "", true}, TraceHop{"10.9.9.9", "root", true}}},
      HostTrace{"b.lan",
                {TraceHop{"10.0.0.1", "gw.lan", true}, TraceHop{"10.9.9.9", "root", true}}}};
  const StructuralNode root = build_structural_tree(traces);
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "gw.lan");
  EXPECT_EQ(root.children[0].display(), "gw.lan");
}

TEST(Structural, RenderShowsHierarchy) {
  std::vector<HostTrace> traces{
      HostTrace{"a.lan", {TraceHop{"10.0.0.1", "gw", true}, TraceHop{"10.9.9.9", "", true}}}};
  const std::string out = render_structural(build_structural_tree(traces));
  EXPECT_NE(out.find("10.9.9.9"), std::string::npos);
  EXPECT_NE(out.find("gw"), std::string::npos);
  EXPECT_NE(out.find("- a.lan"), std::string::npos);
}

// --- cost model (§4.3 scale claim) ---------------------------------------

TEST(CostModel, PaperClaimFiftyDaysForTwentyHosts) {
  const MappingCost naive = naive_full_mapping_cost(20);
  // 380 directed links, C(380,2) pairs, 2 experiments per pair.
  EXPECT_EQ(naive.experiments, 380u + 2u * (380u * 379u / 2u));
  // "the whole process would last about 50 days for 20 hosts"
  EXPECT_NEAR(naive.days(30.0), 50.0, 1.0);
}

TEST(CostModel, EnvCostIsQuadraticNotQuartic) {
  const MappingCost env16 = env_worst_case_cost(16);
  const MappingCost env32 = env_worst_case_cost(32);
  const MappingCost naive16 = naive_full_mapping_cost(16);
  const MappingCost naive32 = naive_full_mapping_cost(32);
  // Doubling hosts roughly x4 for ENV, x16 for naive.
  EXPECT_NEAR(static_cast<double>(env32.experiments) / env16.experiments, 4.0, 0.7);
  EXPECT_NEAR(static_cast<double>(naive32.experiments) / naive16.experiments, 16.0, 1.5);
  // ENV is orders of magnitude cheaper at 20 hosts already.
  EXPECT_GT(naive_full_mapping_cost(20).experiments /
                env_worst_case_cost(20).experiments,
            100u);
}

TEST(CostModel, DegenerateSizes) {
  EXPECT_EQ(naive_full_mapping_cost(0).experiments, 0u);
  EXPECT_EQ(naive_full_mapping_cost(1).experiments, 0u);
  EXPECT_EQ(env_worst_case_cost(1).experiments, 0u);
  EXPECT_EQ(naive_full_mapping_cost(2).experiments, 2u + 2u * 1u);
}

}  // namespace
}  // namespace envnws::env
