// End-to-end: map -> plan -> apply -> monitor -> query, on the paper's
// ENS-Lyon platform and on synthetic families.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/units.hpp"
#include "core/autodeploy.hpp"

namespace envnws::core {
namespace {

using units::mbps;

class EnsLyonDeploy : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new simnet::Scenario(simnet::ens_lyon());
    net_ = new simnet::Network(simnet::Scenario(*scenario_).topology);
    auto result = auto_deploy(*net_, *scenario_);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    deploy_ = new AutoDeployResult(std::move(result.value()));
    // Let the monitoring run for a while.
    net_->run_until(net_->now() + 900.0);
  }
  static void TearDownTestSuite() {
    if (deploy_ != nullptr) deploy_->system->stop();
    delete deploy_;
    deploy_ = nullptr;
    delete net_;
    net_ = nullptr;
    delete scenario_;
    scenario_ = nullptr;
  }

  static simnet::Scenario* scenario_;
  static simnet::Network* net_;
  static AutoDeployResult* deploy_;
};

simnet::Scenario* EnsLyonDeploy::scenario_ = nullptr;
simnet::Network* EnsLyonDeploy::net_ = nullptr;
AutoDeployResult* EnsLyonDeploy::deploy_ = nullptr;

TEST_F(EnsLyonDeploy, PlanMatchesPaperFigure3) {
  const deploy::DeploymentPlan& plan = deploy_->plan;
  ASSERT_EQ(plan.cliques.size(), 5u);

  const auto members_of = [&](deploy::CliqueRole role,
                              const std::string& containing) -> std::vector<std::string> {
    for (const auto& clique : plan.cliques) {
      if (clique.role == role &&
          std::find(clique.members.begin(), clique.members.end(), containing) !=
              clique.members.end()) {
        return clique.members;
      }
    }
    return {};
  };

  // "moby and canaria are used to test the Hub 1"
  const auto hub1 = members_of(deploy::CliqueRole::shared_pair, "canaria.ens-lyon.fr");
  EXPECT_EQ(hub1, (std::vector<std::string>{"canaria.ens-lyon.fr",
                                            "moby.cri2000.ens-lyon.fr"}));
  // "myri0 and popc0 were chosen to test the network characteristics on Hub 2"
  const auto hub2 = members_of(deploy::CliqueRole::shared_pair, "popc.ens-lyon.fr");
  EXPECT_EQ(hub2,
            (std::vector<std::string>{"popc.ens-lyon.fr", "myri.ens-lyon.fr"}));
  // "the myri cluster is shared, so we pick only two hosts (myri1, myri2)"
  const auto hub3 = members_of(deploy::CliqueRole::shared_pair, "myri1.popc.private");
  EXPECT_EQ(hub3,
            (std::vector<std::string>{"myri1.popc.private", "myri2.popc.private"}));
  // "the sci cluster is switched, so we pick all its machines"
  const auto sci = members_of(deploy::CliqueRole::switched_all, "sci1.popc.private");
  EXPECT_EQ(sci.size(), 7u);  // sci gateway + sci1..sci6
  // "the connection between canaria and popc0 is used to test the
  // connexion between these hubs"
  const auto inter = members_of(deploy::CliqueRole::inter, "canaria.ens-lyon.fr");
  ASSERT_EQ(inter.size(), 2u);
  EXPECT_TRUE(std::find(inter.begin(), inter.end(), "popc.ens-lyon.fr") != inter.end());
}

TEST_F(EnsLyonDeploy, ProcessPlacementIsHierarchical) {
  EXPECT_EQ(deploy_->plan.nameserver_host, "the-doors.ens-lyon.fr");
  EXPECT_EQ(deploy_->plan.forecaster_host, "the-doors.ens-lyon.fr");
  // One memory per site: the master's and the private zone's.
  ASSERT_EQ(deploy_->plan.memory_hosts.size(), 2u);
  EXPECT_EQ(deploy_->plan.memory_hosts[0], "the-doors.ens-lyon.fr");
  EXPECT_EQ(deploy_->plan.memory_hosts[1], "popc.ens-lyon.fr");
}

TEST_F(EnsLyonDeploy, DeploymentIsComplete) {
  EXPECT_TRUE(deploy_->validation.complete);
  EXPECT_EQ(deploy_->validation.max_clique_size, 7u);
  // 15 hosts monitored with ~50 experiments/cycle instead of 15*14=210.
  EXPECT_LE(deploy_->validation.experiments_per_cycle, 60u);
}

TEST_F(EnsLyonDeploy, DirectQueryMatchesGroundTruth) {
  auto reply = deploy_->queries->bandwidth("the-doors", "canaria.ens-lyon.fr",
                                           "moby.cri2000.ens-lyon.fr");
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(reply.value().method, deploy::QueryMethod::direct);
  EXPECT_NEAR(reply.value().value, mbps(100), mbps(10));
}

TEST_F(EnsLyonDeploy, SubstitutedQueryUsesRepresentativePair) {
  // (the-doors, moby) is not measured directly: hub1's pair answers.
  auto reply = deploy_->queries->bandwidth("the-doors", "the-doors.ens-lyon.fr",
                                           "moby.cri2000.ens-lyon.fr");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().method, deploy::QueryMethod::substituted);
  EXPECT_NEAR(reply.value().value, mbps(100), mbps(10));
}

TEST_F(EnsLyonDeploy, AggregatedQueryFindsBottleneck) {
  // the-doors -> sci3 crosses the 10 Mbps link: min along the chain.
  auto reply =
      deploy_->queries->bandwidth("the-doors", "the-doors.ens-lyon.fr", "sci3.popc.private");
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(reply.value().method, deploy::QueryMethod::aggregated);
  EXPECT_GE(reply.value().segments.size(), 3u);
  EXPECT_NEAR(reply.value().value, mbps(10), mbps(1.5));
}

TEST_F(EnsLyonDeploy, AggregatedLatencyAddsUp) {
  auto reply =
      deploy_->queries->latency("the-doors", "the-doors.ens-lyon.fr", "sci3.popc.private");
  ASSERT_TRUE(reply.ok());
  const double truth =
      2.0 * net_->ground_truth_latency(scenario_->id("the-doors").value(),
                                       scenario_->id("sci3").value())
                .value();  // RTT
  // Sum of segment RTTs >= end-to-end RTT; same order of magnitude.
  EXPECT_GT(reply.value().value, truth * 0.5);
  EXPECT_LT(reply.value().value, truth * 4.0);
}

TEST_F(EnsLyonDeploy, EveryHostPairIsAnswerable) {
  const auto& hosts = deploy_->plan.hosts;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < hosts.size(); ++j) {
      auto reply = deploy_->queries->bandwidth("the-doors", hosts[i], hosts[j]);
      EXPECT_TRUE(reply.ok()) << hosts[i] << " <-> " << hosts[j] << ": "
                              << (reply.ok() ? "" : reply.error().to_string());
      if (reply.ok()) EXPECT_GT(reply.value().value, 0.0);
    }
  }
}

TEST_F(EnsLyonDeploy, ConfigTextDescribesDeployment) {
  EXPECT_NE(deploy_->config_text.find("[global]"), std::string::npos);
  EXPECT_NE(deploy_->config_text.find("master = the-doors.ens-lyon.fr"), std::string::npos);
  const auto parsed = deploy::parse_config(deploy_->config_text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().cliques.size(), deploy_->plan.cliques.size());
  // Per-host duties extractable for every host.
  const auto assignment =
      deploy::local_assignment(parsed.value(), "the-doors.ens-lyon.fr");
  EXPECT_TRUE(assignment.nameserver);
}

TEST_F(EnsLyonDeploy, CollisionReportSeparatesTwoInterferenceRegimes) {
  // Reproduction finding: NWS has no host-level locks (paper conclusion),
  // so the inter-hub clique can run concurrently with the hub-local
  // cliques. Two regimes emerge:
  //  - forward direction (canaria -> popc) is capped by the 10 Mbps
  //    bottleneck: it only dents a hub-local experiment by ~10%;
  //  - return direction (popc -> canaria) rides the gigabit asymmetric
  //    route, contends at full speed, and can halve a hub measurement.
  double worst_forward = 0.0;
  double worst_return = 0.0;
  for (const auto& finding : deploy_->validation.collisions) {
    const bool involves_return = finding.pair_a.find("popc->canaria") != std::string::npos ||
                                 finding.pair_b.find("popc->canaria") != std::string::npos;
    if (involves_return) {
      worst_return = std::max(worst_return, finding.worst_error);
    } else {
      worst_forward = std::max(worst_forward, finding.worst_error);
    }
  }
  EXPECT_NEAR(worst_return, 0.50, 0.02);
  EXPECT_LE(worst_forward, 0.12);
  EXPECT_NEAR(deploy_->validation.worst_collision_error, 0.50, 0.02);
}

TEST_F(EnsLyonDeploy, RenderedReportIsComprehensive) {
  const std::string report = deploy_->render();
  EXPECT_NE(report.find("ENV effective view"), std::string::npos);
  EXPECT_NE(report.find("deployment plan"), std::string::npos);
  EXPECT_NE(report.find("validation"), std::string::npos);
}

TEST(AutoDeploySynthetic, WanConstellationDeploysHierarchically) {
  auto scenario = simnet::wan_constellation(3, 4, mbps(100), mbps(10));
  simnet::Network net(simnet::Scenario(scenario).topology);
  auto result = auto_deploy(net, scenario);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  // Per-site cliques plus a root inter-site clique.
  std::size_t inter_cliques = 0;
  for (const auto& clique : result.value().plan.cliques) {
    if (clique.role == deploy::CliqueRole::inter) ++inter_cliques;
  }
  EXPECT_GE(inter_cliques, 1u);
  EXPECT_TRUE(result.value().validation.complete);
  net.run_until(net.now() + 400.0);
  auto reply = result.value().queries->bandwidth("site0n0", "site0n0.site0.org",
                                                 "site2n1.site2.org");
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_NEAR(reply.value().value, mbps(10), mbps(2));
  result.value().system->stop();
}

TEST(AutoDeploySynthetic, SingleLanNeedsNoInterClique) {
  auto scenario = simnet::star_hub(5, mbps(100));
  simnet::Network net(simnet::Scenario(scenario).topology);
  auto result = auto_deploy(net, scenario);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().plan.cliques.size(), 1u);
  EXPECT_EQ(result.value().plan.cliques[0].role, deploy::CliqueRole::shared_pair);
  EXPECT_TRUE(result.value().validation.ok());
  result.value().system->stop();
}

TEST(AutoDeployFailure, MonitoringSurvivesHostDeath) {
  auto scenario = simnet::star_switch(4, mbps(100));
  simnet::Network net(simnet::Scenario(scenario).topology);
  auto result = auto_deploy(net, scenario);
  ASSERT_TRUE(result.ok());
  net.run_until(net.now() + 120.0);
  net.set_host_up(net.topology().find_by_name("h1").value(), false);
  net.run_until(net.now() + 400.0);
  // Measurements among survivors continue (token either routed around
  // the dead member or was regenerated — both are recovery paths; the
  // deterministic regeneration case is covered in the nws suite).
  const auto* series =
      result.value().system->find_series({nws::ResourceKind::bandwidth, "h2", "h3"});
  ASSERT_NE(series, nullptr);
  EXPECT_GT(series->latest().time, net.now() - 100.0);
  // Queries about dead-host pairs still answer from history.
  auto reply = result.value().queries->bandwidth("h0", "h0.lan", "h1.lan");
  EXPECT_TRUE(reply.ok());
  result.value().system->stop();
}

}  // namespace
}  // namespace envnws::core
