// Loopback integration of the real-socket probe backend: N ProbeAgents
// on 127.0.0.1 ephemeral ports, mapped end-to-end through api::Session.
//
// Everything here is hermetic to loopback (set ENVNWS_TEST_NO_NET=1 to
// skip the suite entirely, e.g. in sandboxes without socket support)
// and deterministic: agents run in fixed-rate mode, so reported
// measurements — and with them MapResult::identity_digest() — are
// reproducible across runs, worker counts and record/replay.
//
// The three ISSUE-5 contracts:
//   (a) record -> replay of a live socket mapping is digest-identical,
//       with the replay running entirely offline (agents stopped);
//   (b) run_batch at probe_jobs in {1, 2, 8} issues the same canonical
//       experiment stream and yields the same digest as sequential;
//   (c) agent death surfaces a distinct, bounded-time Result error —
//       never a hang — and a mapping degrades instead of failing.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "env/probe_agent.hpp"
#include "env/socket_probe_engine.hpp"
#include "testing/virtual_scheduler.hpp"

namespace envnws::api {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

bool no_net() {
  const char* flag = std::getenv("ENVNWS_TEST_NO_NET");
  return flag != nullptr && std::string(flag) == "1";
}

#define SKIP_WITHOUT_NET()                                    \
  do {                                                        \
    if (no_net()) GTEST_SKIP() << "ENVNWS_TEST_NO_NET=1 set"; \
  } while (0)

simnet::Scenario make_scenario(const std::string& spec) {
  auto made = ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(made.ok()) << spec;
  return std::move(made.value());
}

/// One in-process agent per scenario host, each on an ephemeral
/// loopback port, plus the roster file pointing at them.
class AgentFleet {
 public:
  /// `rate_bps` > 0 puts every agent in deterministic fixed-rate mode.
  void spawn(const simnet::Scenario& scenario, double rate_bps, const std::string& roster_name) {
    for (const simnet::NodeId id : scenario.topology.hosts()) {
      const simnet::Node& node = scenario.topology.node(id);
      env::ProbeAgentConfig config;
      // The mapper probes by the zone-local name (the fqdn for plain
      // hosts) — roster the agent under exactly that.
      config.name = node.fqdn.empty() ? node.name : node.fqdn;
      config.fqdn = node.fqdn;
      config.ip = node.ip.is_zero() ? "127.0.0.1" : node.ip.to_string();
      config.properties = node.properties;
      config.fixed_rate_bps = rate_bps;
      config.io_timeout_s = 20.0;
      agents_.push_back(std::make_unique<env::ProbeAgent>(std::move(config)));
      ASSERT_TRUE(agents_.back()->start().ok()) << node.name;
    }
    roster_path_ = (fs::path(::testing::TempDir()) / roster_name).string();
    std::ofstream out(roster_path_, std::ios::trunc);
    for (const auto& agent : agents_) {
      out << agent->config().name << " 127.0.0.1:" << agent->port() << "\n";
    }
  }

  /// Kill one host's agent (its port stays in the roster: a dead
  /// endpoint, exactly what a crashed sensor looks like).
  void stop_host(const std::string& name) {
    for (auto& agent : agents_) {
      if (agent->config().name == name) agent->stop();
    }
  }

  void stop_all() {
    for (auto& agent : agents_) agent->stop();
  }

  [[nodiscard]] const std::string& roster_path() const { return roster_path_; }
  [[nodiscard]] env::wire::AgentRoster roster() const {
    auto loaded = env::wire::AgentRoster::load(roster_path_);
    EXPECT_TRUE(loaded.ok());
    return loaded.value();
  }

 private:
  std::vector<std::unique_ptr<env::ProbeAgent>> agents_;
  std::string roster_path_;
};

/// Socket-backed mapping sessions keep probes fast and deterministic:
/// small payloads, no settle gap (loopback needs none).
void tune_for_loopback(Session& session, int probe_jobs = 1) {
  session.options().mapper.probe_bytes = 64 * 1024;
  session.options().mapper.stabilization_gap_s = 0.0;
  session.options().mapper.probe_jobs = probe_jobs;
}

// --- spec grammar (no sockets involved: parse-time behavior) ----------------

TEST(SocketEngineSpec, RejectsMalformedSocketSpecsAtSetTime) {
  auto scenario = make_scenario("star-switch:4");
  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  // Missing roster file: not_found, eagerly at set time.
  auto missing = session.set_probe_engine_spec("socket:/definitely/not/there.cfg");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::not_found);
  // Malformed roster: the line-numbered parse error surfaces verbatim.
  const std::string bad_roster = (fs::path(::testing::TempDir()) / "bad-roster.cfg").string();
  { std::ofstream(bad_roster) << "h0 127.0.0.1:4000\nh1 127.0.0.1\n"; }
  auto malformed = session.set_probe_engine_spec("socket:" + bad_roster);
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.error().code, ErrorCode::invalid_argument);
  EXPECT_NE(malformed.error().message.find(":2:"), std::string::npos)
      << malformed.error().message;
  // Structurally invalid compositions.
  const std::string ok_roster = (fs::path(::testing::TempDir()) / "ok-roster.cfg").string();
  { std::ofstream(ok_roster) << "h0.lan 127.0.0.1:4000\n"; }
  const std::string empty_roster = (fs::path(::testing::TempDir()) / "empty-roster.cfg").string();
  { std::ofstream(empty_roster) << "# no agents\n"; }
  for (const std::string bad : {
           std::string("socket:"),                           // no roster path
           "socket:" + empty_roster,                         // roster lists no agents
           "replay:/tmp/x.envtrace@socket:" + ok_roster,     // replay is offline
           std::string("replay:/tmp/x.envtrace@sim"),        // ...for any base
           "sim@socket:" + ok_roster,                        // contradictory bases
           "socket:" + ok_roster + "@socket:" + ok_roster,   // two bases
           "@socket:" + ok_roster,                           // decorates nothing
       }) {
    auto status = session.set_probe_engine_spec(bad);
    ASSERT_FALSE(status.ok()) << bad;
    EXPECT_EQ(status.error().code, ErrorCode::invalid_argument) << bad;
  }
  // Valid specs parse without touching any socket.
  for (const std::string good : {
           "socket:" + ok_roster,
           "record:/tmp/socket-spec.envtrace@socket:" + ok_roster,
           "fault:bw#0=fail:timeout@socket:" + ok_roster,
       }) {
    EXPECT_TRUE(session.set_probe_engine_spec(good).ok()) << good;
    EXPECT_EQ(session.probe_engine_spec(), good);
  }
  // And "sim" still restores the default factory afterwards.
  EXPECT_TRUE(session.set_probe_engine_spec("sim").ok());
}

// --- (a) record -> replay ---------------------------------------------------

TEST(SocketEngine, LiveMappingRecordsAGoldenTraceThatReplaysOffline) {
  SKIP_WITHOUT_NET();
  auto scenario = make_scenario("star-switch:8");
  AgentFleet fleet;
  fleet.spawn(scenario, 1e9, "socket-rr.cfg");
  const std::string trace = (fs::path(::testing::TempDir()) / "socket-rr.envtrace").string();

  simnet::Network live_net(simnet::Scenario(scenario).topology);
  Session live(live_net, scenario);
  tune_for_loopback(live);
  ASSERT_TRUE(
      live.set_probe_engine_spec("record:" + trace + "@socket:" + fleet.roster_path()).ok());
  EventLog log;
  live.set_observer(&log);
  ASSERT_TRUE(live.map().ok());
  // Real TCP experiments happened: the mapper measured through agents,
  // not the simulator (the session network carried zero probe flows).
  EXPECT_GT(live.map_result().stats.experiments, 0u);
  EXPECT_GT(live.map_result().stats.bytes_sent, 0);
  const auto& purposes = live_net.stats().by_purpose;
  EXPECT_EQ(purposes.find("env-probe"), purposes.end());
  bool roster_noted = false;
  for (const auto& event : log.events()) {
    roster_noted = roster_noted ||
                   event.detail.find("socket agent roster") != std::string::npos;
  }
  EXPECT_TRUE(roster_noted);

  // The offline half: agents gone, the trace alone reproduces the run.
  fleet.stop_all();
  simnet::Network replay_net(simnet::Scenario(scenario).topology);
  Session replay(replay_net, scenario);
  tune_for_loopback(replay);
  ASSERT_TRUE(replay.set_probe_engine_spec("replay:" + trace).ok());
  ASSERT_TRUE(replay.map().ok());
  EXPECT_EQ(live.map_result().identity_digest(), replay.map_result().identity_digest());

  // The replayed view drives the rest of the pipeline like a live one.
  ASSERT_TRUE(replay.plan().ok());
  EXPECT_FALSE(replay.plan_result().cliques.empty());
}

// --- (b) batched == sequential ----------------------------------------------

TEST(SocketEngine, BatchedMappingIsDigestIdenticalAcrossProbeJobs) {
  SKIP_WITHOUT_NET();
  auto scenario = make_scenario("star-switch:8");
  AgentFleet fleet;
  fleet.spawn(scenario, 1e9, "socket-jobs.cfg");

  std::string baseline_digest;
  std::uint64_t baseline_experiments = 0;
  for (const int jobs : {1, 2, 8}) {
    simnet::Network net(simnet::Scenario(scenario).topology);
    Session session(net, scenario);
    tune_for_loopback(session, jobs);
    ASSERT_TRUE(session.set_probe_engine_spec("socket:" + fleet.roster_path()).ok());
    ASSERT_TRUE(session.map().ok()) << "probe_jobs=" << jobs;
    const env::MapResult& result = session.map_result();
    if (jobs == 1) {
      baseline_digest = result.identity_digest();
      baseline_experiments = result.stats.experiments;
      ASSERT_FALSE(baseline_digest.empty());
    } else {
      // Same canonical experiment stream, same measurements, same
      // digest — the batch only changes WHEN experiments ran.
      EXPECT_EQ(result.identity_digest(), baseline_digest) << "probe_jobs=" << jobs;
      EXPECT_EQ(result.stats.experiments, baseline_experiments);
      EXPECT_GT(result.batch.batches, 0u);
      // A switched star earns genuine schedule savings.
      EXPECT_GT(result.batch.saved_s(), 0.0);
    }
  }
  fleet.stop_all();
}

TEST(SocketEngine, RunBatchKeepsCanonicalOrderAndStatsBitIdentical) {
  SKIP_WITHOUT_NET();
  auto scenario = make_scenario("star-switch:6");
  AgentFleet fleet;
  fleet.spawn(scenario, 4e8, "socket-batch.cfg");
  env::MapperOptions options;
  options.probe_bytes = 64 * 1024;
  options.stabilization_gap_s = 0.0;

  // Three disjoint pairs + one conflicting straggler.
  const std::vector<env::ProbeExperiment> experiments = {
      env::ProbeExperiment::single("h0.lan", "h1.lan"),
      env::ProbeExperiment::single("h2.lan", "h3.lan"),
      env::ProbeExperiment::single("h4.lan", "h0.lan"),  // conflicts with [0]
      env::ProbeExperiment::concurrent({env::BandwidthRequest{"h1.lan", "h2.lan"},
                                        env::BandwidthRequest{"h3.lan", "h4.lan"}}),
  };
  env::SocketProbeEngine sequential(fleet.roster(), options);
  const auto sequential_outcomes = sequential.run_batch(experiments, 1);
  env::SocketProbeEngine batched(fleet.roster(), options);
  const auto batched_outcomes = batched.run_batch(experiments, 8);

  ASSERT_EQ(sequential_outcomes.size(), experiments.size());
  ASSERT_EQ(batched_outcomes.size(), experiments.size());
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    ASSERT_EQ(batched_outcomes[i].results.size(), sequential_outcomes[i].results.size()) << i;
    for (std::size_t r = 0; r < sequential_outcomes[i].results.size(); ++r) {
      ASSERT_TRUE(sequential_outcomes[i].results[r].ok()) << i;
      ASSERT_TRUE(batched_outcomes[i].results[r].ok()) << i;
      // Fixed-rate agents report identical values regardless of real
      // concurrency — canonical order is observable bit for bit.
      EXPECT_EQ(batched_outcomes[i].results[r].value(), sequential_outcomes[i].results[r].value())
          << "experiment " << i << " transfer " << r;
    }
    EXPECT_EQ(batched_outcomes[i].duration_s, sequential_outcomes[i].duration_s) << i;
  }
  // Cumulative engine stats folded canonically: bit-identical too.
  EXPECT_EQ(batched.stats().experiments, sequential.stats().experiments);
  EXPECT_EQ(batched.stats().bytes_sent, sequential.stats().bytes_sent);
  EXPECT_EQ(batched.stats().busy_time_s, sequential.stats().busy_time_s);
  fleet.stop_all();
}

// --- (c) agent death --------------------------------------------------------

TEST(SocketEngine, DeadAndSilentAgentsSurfaceDistinctBoundedErrors) {
  SKIP_WITHOUT_NET();
  // One live agent, one dead endpoint (bound then closed: connection
  // refused), one silent endpoint (accepts, never replies: timeout).
  env::ProbeAgentConfig live_config;
  live_config.name = "alive";
  live_config.fqdn = "alive.lan";
  live_config.fixed_rate_bps = 1e9;
  env::ProbeAgent live(live_config);
  ASSERT_TRUE(live.start().ok());

  std::uint16_t dead_port = 0;
  {
    auto listener = env::wire::TcpListener::listen("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener.value().port();
  }  // closed: nothing listens here any more
  auto silent = env::wire::TcpListener::listen("127.0.0.1", 0);
  ASSERT_TRUE(silent.ok());

  env::wire::AgentRoster roster;
  roster.agents.push_back(env::wire::AgentEndpoint{"alive", "127.0.0.1", live.port()});
  roster.agents.push_back(env::wire::AgentEndpoint{"dead", "127.0.0.1", dead_port});
  roster.agents.push_back(env::wire::AgentEndpoint{"mute", "127.0.0.1", silent.value().port()});
  env::MapperOptions options;
  options.probe_bytes = 64 * 1024;
  options.stabilization_gap_s = 0.0;
  env::SocketEngineOptions socket_options;
  socket_options.connect_timeout_s = 1.0;
  socket_options.frame_timeout_s = 1.0;
  socket_options.transfer_timeout_s = 1.5;
  env::SocketProbeEngine engine(roster, options, socket_options);

  const auto begin = Clock::now();
  // Dead source agent: connection refused, surfaced as unreachable.
  auto dead_source = engine.bandwidth("dead", "alive");
  ASSERT_FALSE(dead_source.ok());
  EXPECT_EQ(dead_source.error().code, ErrorCode::unreachable);
  EXPECT_NE(dead_source.error().message.find("probe agent 'dead'"), std::string::npos)
      << dead_source.error().message;
  // Dead sink: the live source agent reports its peer as unreachable.
  auto dead_sink = engine.bandwidth("alive", "dead");
  ASSERT_FALSE(dead_sink.ok());
  EXPECT_EQ(dead_sink.error().code, ErrorCode::unreachable) << dead_sink.error().to_string();
  // Absent from the roster entirely: a distinct not_found.
  auto unknown = engine.bandwidth("alive", "ghost");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, ErrorCode::not_found);
  // Silent agent: accepts, never answers — bounded timeout, not a hang.
  auto mute = engine.lookup("mute");
  ASSERT_FALSE(mute.ok());
  EXPECT_EQ(mute.error().code, ErrorCode::timeout) << mute.error().to_string();
  const double elapsed = std::chrono::duration<double>(Clock::now() - begin).count();
  EXPECT_LT(elapsed, 15.0) << "errors must surface within the configured socket timeouts";
  live.stop();
}

TEST(SocketEngine, MappingDegradesWithWarningsWhenAnAgentDiesMidFleet) {
  SKIP_WITHOUT_NET();
  auto scenario = make_scenario("star-switch:4");
  AgentFleet fleet;
  fleet.spawn(scenario, 1e9, "socket-death.cfg");
  // One member's sensor crashed before the mapping (its roster entry
  // now points at a dead port). The mapper must finish the zone,
  // demoting that host's probes to warnings that NAME the agent.
  fleet.stop_host("h2.lan");

  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  tune_for_loopback(session);
  ASSERT_TRUE(session.set_probe_engine_spec("socket:" + fleet.roster_path()).ok());
  const auto begin = Clock::now();
  ASSERT_TRUE(session.map().ok());
  const double elapsed = std::chrono::duration<double>(Clock::now() - begin).count();
  EXPECT_LT(elapsed, 60.0);
  bool dead_agent_warned = false;
  for (const auto& warning : session.map_result().warnings) {
    dead_agent_warned = dead_agent_warned ||
                        (warning.find("h2") != std::string::npos &&
                         warning.find("probe agent") != std::string::npos);
  }
  EXPECT_TRUE(dead_agent_warned) << "no warning names the dead agent";
  // The surviving hosts still got mapped.
  EXPECT_GT(session.map_result().stats.experiments, 0u);
  fleet.stop_all();
}

/// Kills one fleet host's agent at the first worker-dispatch decision of
/// run_batch — i.e. AFTER the batch was submitted but BEFORE any of its
/// experiments completed — then schedules FIFO. The schedule-exploration
/// seam (engine.set_virtual_scheduler) is what makes "mid-batch" a
/// deterministic instant instead of a sleep-and-hope race.
class AgentKillingScheduler final : public testing::VirtualScheduler {
 public:
  AgentKillingScheduler(AgentFleet& fleet, std::string victim)
      : fleet_(fleet), victim_(std::move(victim)) {}
  [[nodiscard]] bool killed() const { return killed_; }

 protected:
  std::size_t choose(const testing::DecisionPoint& point) override {
    if (!killed_ && point.point == "socket") {
      killed_ = true;
      fleet_.stop_host(victim_);
    }
    return 0;  // FIFO from here: the victim's experiments dispatch later
  }

 private:
  AgentFleet& fleet_;
  std::string victim_;
  bool killed_ = false;
};

TEST(SocketEngine, AgentDeathDuringRunBatchKeepsErrorsInCanonicalOrder) {
  SKIP_WITHOUT_NET();
  auto scenario = make_scenario("star-switch:6");
  AgentFleet fleet;
  fleet.spawn(scenario, 1e9, "socket-midbatch-death.cfg");
  env::MapperOptions options;
  options.probe_bytes = 64 * 1024;
  options.stabilization_gap_s = 0.0;
  env::SocketEngineOptions socket_options;
  socket_options.connect_timeout_s = 1.0;
  socket_options.frame_timeout_s = 1.0;
  socket_options.transfer_timeout_s = 1.5;

  // Experiments 3 and 4 touch h5.lan — the host whose agent dies at the
  // first dispatch decision, before anything has completed.
  const std::vector<env::ProbeExperiment> experiments = {
      env::ProbeExperiment::single("h0.lan", "h1.lan"),
      env::ProbeExperiment::single("h2.lan", "h3.lan"),
      env::ProbeExperiment::single("h0.lan", "h2.lan"),  // conflicts with [0] and [1]
      env::ProbeExperiment::single("h4.lan", "h5.lan"),
      env::ProbeExperiment::concurrent({env::BandwidthRequest{"h5.lan", "h4.lan"},
                                        env::BandwidthRequest{"h1.lan", "h3.lan"}}),
  };

  // Reference run while the whole fleet is alive (fixed-rate agents:
  // values are bit-reproducible across engines and worker counts).
  env::SocketProbeEngine reference(fleet.roster(), options, socket_options);
  const auto healthy = reference.run_batch(experiments, 1);
  ASSERT_EQ(healthy.size(), experiments.size());
  for (const auto& outcome : healthy) {
    for (const auto& result : outcome.results) ASSERT_TRUE(result.ok());
  }

  AgentKillingScheduler killer(fleet, "h5.lan");
  env::SocketProbeEngine engine(fleet.roster(), options, socket_options);
  engine.set_virtual_scheduler(&killer);
  const auto begin = Clock::now();
  const auto outcomes = engine.run_batch(experiments, 3);
  const double elapsed = std::chrono::duration<double>(Clock::now() - begin).count();
  EXPECT_LT(elapsed, 30.0) << "a dead agent must not stall the batch";
  EXPECT_TRUE(killer.killed());
  EXPECT_TRUE(killer.health().ok());

  // Per-experiment results stay in CANONICAL batch order: slot i is
  // experiment i, whether it measured or failed. Experiments that never
  // touch the dead host carry exactly the healthy run's values.
  ASSERT_EQ(outcomes.size(), experiments.size());
  for (const std::size_t i : {0u, 1u, 2u}) {
    ASSERT_EQ(outcomes[i].results.size(), healthy[i].results.size()) << i;
    for (std::size_t r = 0; r < outcomes[i].results.size(); ++r) {
      ASSERT_TRUE(outcomes[i].results[r].ok()) << "experiment " << i;
      EXPECT_EQ(outcomes[i].results[r].value(), healthy[i].results[r].value())
          << "experiment " << i << " transfer " << r;
    }
  }
  // The victim's experiments fail in place — h4->h5 entirely, and only
  // the dead-host transfer of the mixed concurrent experiment.
  ASSERT_EQ(outcomes[3].results.size(), 1u);
  ASSERT_FALSE(outcomes[3].results[0].ok());
  EXPECT_EQ(outcomes[3].results[0].error().code, ErrorCode::unreachable)
      << outcomes[3].results[0].error().to_string();
  ASSERT_EQ(outcomes[4].results.size(), 2u);
  EXPECT_FALSE(outcomes[4].results[0].ok());

  fleet.stop_all();
}

// --- latency + agent introspection ------------------------------------------

TEST(SocketEngine, PingTrainsAndAgentStatsWork) {
  SKIP_WITHOUT_NET();
  auto scenario = make_scenario("star-switch:4");
  AgentFleet fleet;
  fleet.spawn(scenario, 1e9, "socket-ping.cfg");
  env::MapperOptions options;
  options.probe_bytes = 64 * 1024;
  options.stabilization_gap_s = 0.0;
  env::SocketProbeEngine engine(fleet.roster(), options);

  auto rtt = engine.ping_rtt("h0.lan", 8);
  ASSERT_TRUE(rtt.ok()) << rtt.error().to_string();
  EXPECT_GT(rtt.value(), 0.0);
  EXPECT_LT(rtt.value(), 1.0);  // loopback

  ASSERT_TRUE(engine.bandwidth("h0.lan", "h1.lan").ok());
  auto source_stats = engine.agent_stats("h0.lan");
  ASSERT_TRUE(source_stats.ok()) << source_stats.error().to_string();
  EXPECT_EQ(source_stats.value().experiments, 1u);
  EXPECT_EQ(source_stats.value().bytes_sent, 64 * 1024);
  EXPECT_GT(source_stats.value().busy_time_s, 0.0);
  // The sink agent sourced nothing.
  auto sink_stats = engine.agent_stats("h1.lan");
  ASSERT_TRUE(sink_stats.ok());
  EXPECT_EQ(sink_stats.value().experiments, 0u);
  fleet.stop_all();
}

// --- connection pool --------------------------------------------------------

TEST(SocketEngine, IdlePoolHoldsTheGlobalLruBound) {
  SKIP_WITHOUT_NET();
  auto scenario = make_scenario("star-switch:6");
  AgentFleet fleet;
  fleet.spawn(scenario, 1e9, "socket-pool.cfg");
  env::MapperOptions options;
  options.probe_bytes = 64 * 1024;
  options.stabilization_gap_s = 0.0;
  env::SocketEngineOptions socket_options;
  socket_options.max_idle_sockets = 2;  // tiny bound so eviction is forced
  env::SocketProbeEngine engine(fleet.roster(), options, socket_options);

  EXPECT_EQ(engine.idle_sockets(), 0u);
  // Probes across 6 hosts open (and release) connections to many agents;
  // with an unbounded per-host pool this would idle 6+ sockets. The
  // global LRU bound must hold after EVERY experiment.
  const std::vector<std::string> hosts = {"h0.lan", "h1.lan", "h2.lan",
                                          "h3.lan", "h4.lan", "h5.lan"};
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    ASSERT_TRUE(engine.lookup(hosts[i]).ok()) << hosts[i];
    EXPECT_LE(engine.idle_sockets(), 2u);
    const auto& from = hosts[i];
    const auto& to = hosts[(i + 1) % hosts.size()];
    ASSERT_TRUE(engine.bandwidth(from, to).ok()) << from << " -> " << to;
    EXPECT_LE(engine.idle_sockets(), 2u);
  }
  // And evicted connections really closed: the pool is at the bound, not
  // above it, yet probing still works (fresh dials replace evictions).
  EXPECT_EQ(engine.idle_sockets(), 2u);
  ASSERT_TRUE(engine.bandwidth("h5.lan", "h0.lan").ok());
  EXPECT_LE(engine.idle_sockets(), 2u);
  fleet.stop_all();
}

}  // namespace
}  // namespace envnws::api
