// Reproducibility: the entire pipeline is deterministic — two identical
// runs produce bit-identical maps, plans, configurations and measurement
// streams. This is a core design decision (DESIGN.md #2) and what makes
// every other test in the suite trustworthy.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/autodeploy.hpp"

namespace envnws::core {
namespace {

using units::mbps;

struct RunDigest {
  std::string effective_view;
  std::string config;
  std::uint64_t map_experiments;
  std::int64_t map_bytes;
  double map_duration;
  std::uint64_t measurements;
  std::vector<double> series_values;
};

RunDigest run_once(bool with_jitter) {
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::NetworkOptions net_options;
  if (with_jitter) {
    net_options.measurement_jitter_sigma = 0.03;
    net_options.seed = 99;
  }
  simnet::Network net(simnet::Scenario(scenario).topology, net_options);
  auto result = auto_deploy(net, scenario);
  EXPECT_TRUE(result.ok());
  net.run_until(net.now() + 300.0);
  RunDigest digest;
  digest.effective_view = env::render_effective(result.value().map.root);
  digest.config = result.value().config_text;
  digest.map_experiments = result.value().map.stats.experiments;
  digest.map_bytes = result.value().map.stats.bytes_sent;
  digest.map_duration = result.value().map.stats.duration_s;
  digest.measurements = result.value().system->total_measurements();
  const auto* series = result.value().system->find_series(
      {nws::ResourceKind::bandwidth, "canaria", "moby"});
  if (series != nullptr) digest.series_values = series->values();
  result.value().system->stop();
  return digest;
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  const RunDigest a = run_once(false);
  const RunDigest b = run_once(false);
  EXPECT_EQ(a.effective_view, b.effective_view);
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.map_experiments, b.map_experiments);
  EXPECT_EQ(a.map_bytes, b.map_bytes);
  EXPECT_DOUBLE_EQ(a.map_duration, b.map_duration);
  EXPECT_EQ(a.measurements, b.measurements);
  ASSERT_EQ(a.series_values.size(), b.series_values.size());
  for (std::size_t i = 0; i < a.series_values.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series_values[i], b.series_values[i]);
  }
}

TEST(Determinism, SeededJitterIsAlsoReproducible) {
  const RunDigest a = run_once(true);
  const RunDigest b = run_once(true);
  EXPECT_EQ(a.effective_view, b.effective_view);
  ASSERT_EQ(a.series_values.size(), b.series_values.size());
  for (std::size_t i = 0; i < a.series_values.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series_values[i], b.series_values[i]);
  }
}

TEST(Determinism, JitteredRunDiffersFromCleanRun) {
  const RunDigest clean = run_once(false);
  const RunDigest jittered = run_once(true);
  ASSERT_FALSE(clean.series_values.empty());
  ASSERT_FALSE(jittered.series_values.empty());
  bool any_different = false;
  for (std::size_t i = 0;
       i < std::min(clean.series_values.size(), jittered.series_values.size()); ++i) {
    if (clean.series_values[i] != jittered.series_values[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace envnws::core
