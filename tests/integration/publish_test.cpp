// The §4.3 "Bandwidth waste" workflow: map once, publish the GridML,
// redeploy anywhere from the published file without injecting a single
// ENV probe. Plus the memory-server dump/restore persistence.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/autodeploy.hpp"
#include "nws/memory.hpp"

namespace envnws::core {
namespace {

using units::mbps;

TEST(PublishWorkflow, DeployFromPublishedGridmlWithoutProbes) {
  // First operator maps the platform and publishes the result.
  std::string published;
  {
    simnet::Scenario scenario = simnet::ens_lyon();
    simnet::Network net(simnet::Scenario(scenario).topology);
    auto result = auto_deploy(net, scenario);
    ASSERT_TRUE(result.ok());
    published = result.value().map.grid.to_string();
    result.value().system->stop();
  }

  // Second operator deploys from the file on a fresh platform instance.
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);
  auto result = deploy_from_gridml(net, published, "the-doors.ens-lyon.fr");
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  // Not a single mapping probe was injected on this network.
  EXPECT_EQ(net.stats().by_purpose.count("env-probe"), 0u);

  // The deployment is complete and the monitoring works.
  EXPECT_TRUE(result.value().validation.complete);
  net.run_until(net.now() + 600.0);
  auto reply = result.value().queries->bandwidth("the-doors", "the-doors.ens-lyon.fr",
                                                 "sci3.popc.private");
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_NEAR(reply.value().value, mbps(10), mbps(1.5));

  // Memory servers were placed on the master + the gateways named in
  // the published view (no zone data is available in this workflow).
  EXPECT_GE(result.value().plan.memory_hosts.size(), 2u);
  result.value().system->stop();
}

TEST(PublishWorkflow, SameCliqueStructureAsLiveMapping) {
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);
  auto live = auto_deploy(net, scenario);
  ASSERT_TRUE(live.ok());
  const std::string published = live.value().map.grid.to_string();
  live.value().system->stop();

  simnet::Network net2(simnet::Scenario(scenario).topology);
  auto replay = deploy_from_gridml(net2, published, "the-doors.ens-lyon.fr");
  ASSERT_TRUE(replay.ok());
  // Same number of cliques with the same member counts (representative
  // *choice* may differ: zone-master preference is lost in publication).
  ASSERT_EQ(replay.value().plan.cliques.size(), live.value().plan.cliques.size());
  for (std::size_t i = 0; i < live.value().plan.cliques.size(); ++i) {
    EXPECT_EQ(replay.value().plan.cliques[i].members.size(),
              live.value().plan.cliques[i].members.size());
    EXPECT_EQ(replay.value().plan.cliques[i].role, live.value().plan.cliques[i].role);
  }
  replay.value().system->stop();
}

TEST(PublishWorkflow, RejectsDocumentsWithoutNetworkTree) {
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);
  EXPECT_FALSE(deploy_from_gridml(net, "<GRID />", "the-doors.ens-lyon.fr").ok());
  EXPECT_FALSE(deploy_from_gridml(net, "not xml at all", "x").ok());
}

TEST(MemoryPersistence, DumpRestoreRoundTrip) {
  nws::MemoryServer original("mem", simnet::NodeId(0));
  original.store({nws::ResourceKind::bandwidth, "a", "b"}, 1.5, 9.9e7);
  original.store({nws::ResourceKind::bandwidth, "a", "b"}, 2.5, 9.8e7);
  original.store({nws::ResourceKind::cpu, "h", ""}, 3.0, 0.75);
  const std::string dump = original.dump();

  nws::MemoryServer restored("mem2", simnet::NodeId(1));
  ASSERT_TRUE(restored.restore(dump).ok());
  const auto* bw = restored.find({nws::ResourceKind::bandwidth, "a", "b"});
  ASSERT_NE(bw, nullptr);
  ASSERT_EQ(bw->size(), 2u);
  EXPECT_DOUBLE_EQ(bw->at(0).time, 1.5);
  EXPECT_DOUBLE_EQ(bw->at(1).value, 9.8e7);
  const auto* cpu = restored.find({nws::ResourceKind::cpu, "h", ""});
  ASSERT_NE(cpu, nullptr);
  EXPECT_DOUBLE_EQ(cpu->latest().value, 0.75);
  // The restored dump carries the same series lines (header differs by
  // server name only).
  const std::string dump2 = restored.dump();
  EXPECT_NE(dump2.find("series bandwidth a b"), std::string::npos);
  EXPECT_NE(dump2.find("series availableCpu h -"), std::string::npos);
  EXPECT_EQ(dump.substr(dump.find('\n')), dump2.substr(dump2.find('\n')));
}

TEST(MemoryPersistence, RestoreRejectsGarbage) {
  nws::MemoryServer memory("mem", simnet::NodeId(0));
  EXPECT_FALSE(memory.restore("series bogus a b\n1 2\n").ok());
  EXPECT_FALSE(memory.restore("1.0 2.0\n").ok());  // data before header
  EXPECT_FALSE(memory.restore("series bandwidth a\n").ok());  // missing field
  EXPECT_FALSE(memory.restore("series bandwidth a b\nnot numbers\n").ok());
  // Empty and comment-only dumps are fine no-ops.
  EXPECT_TRUE(memory.restore("").ok());
  EXPECT_TRUE(memory.restore("# just a comment\n").ok());
}

}  // namespace
}  // namespace envnws::core
