#include "deploy/planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/units.hpp"

namespace envnws::deploy {
namespace {

using env::EnvNetwork;
using env::NetKind;
using units::mbps;

EnvNetwork shared_net(const std::string& label, std::vector<std::string> machines,
                      const std::string& gateway = "") {
  EnvNetwork net;
  net.kind = NetKind::shared;
  net.label = label;
  net.machines = std::move(machines);
  net.gateway = gateway;
  net.base_bw_bps = mbps(100);
  net.base_local_bw_bps = mbps(100);
  return net;
}

EnvNetwork switched_net(const std::string& label, std::vector<std::string> machines,
                        const std::string& gateway = "") {
  EnvNetwork net = shared_net(label, std::move(machines), gateway);
  net.kind = NetKind::switched;
  return net;
}

TEST(Planner, SharedNetworkGetsRepresentativePairAndSubstitution) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  root.label = "root";
  root.children.push_back(shared_net("hub", {"a.x", "b.x", "c.x", "master.x"}));
  const auto plan = plan_from_tree(root, "master.x");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().cliques.size(), 1u);
  const PlannedClique& clique = plan.value().cliques.front();
  EXPECT_EQ(clique.role, CliqueRole::shared_pair);
  // Two members; never the master (the paper picked canaria+moby, not
  // the-doors).
  ASSERT_EQ(clique.members.size(), 2u);
  EXPECT_EQ(clique.members[0], "a.x");
  EXPECT_EQ(clique.members[1], "b.x");
  ASSERT_EQ(plan.value().substitutions.size(), 1u);
  EXPECT_EQ(plan.value().substitutions[0].covered.size(), 4u);
}

TEST(Planner, SwitchedNetworkGetsFullCliquePlusGateway) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  root.children.push_back(switched_net("sw", {"s1.x", "s2.x", "s3.x"}, "gw.x"));
  root.machines = {"master.x", "gw.x"};
  const auto plan = plan_from_tree(root, "master.x");
  ASSERT_TRUE(plan.ok());
  const PlannedClique* sw = nullptr;
  for (const auto& clique : plan.value().cliques) {
    if (clique.role == CliqueRole::switched_all) sw = &clique;
  }
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->members.size(), 4u);  // 3 members + gateway
  EXPECT_TRUE(std::find(sw->members.begin(), sw->members.end(), "gw.x") != sw->members.end());
  // Switched networks get no substitution entry.
  EXPECT_TRUE(plan.value().substitutions.empty());
}

TEST(Planner, InconclusiveTreatedConservativelyAsFullClique) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  EnvNetwork odd = switched_net("odd", {"o1.x", "o2.x", "o3.x"});
  odd.kind = NetKind::inconclusive;
  root.children.push_back(odd);
  const auto plan = plan_from_tree(root, "o1.x");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().cliques.size(), 1u);
  EXPECT_EQ(plan.value().cliques[0].role, CliqueRole::switched_all);
  EXPECT_EQ(plan.value().cliques[0].members.size(), 3u);
}

TEST(Planner, InterCliqueLinksSiblingRepresentatives) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  root.label = "edge";
  root.children.push_back(shared_net("hubA", {"a1.x", "a2.x", "master.x"}));
  root.children.push_back(shared_net("hubB", {"b1.x", "b2.x"}));
  const auto plan = plan_from_tree(root, "master.x");
  ASSERT_TRUE(plan.ok());
  const PlannedClique* inter = nullptr;
  for (const auto& clique : plan.value().cliques) {
    if (clique.role == CliqueRole::inter) inter = &clique;
  }
  ASSERT_NE(inter, nullptr);
  ASSERT_EQ(inter->members.size(), 2u);
  // One representative per hub, never the master.
  EXPECT_EQ(inter->members[0], "a1.x");
  EXPECT_EQ(inter->members[1], "b1.x");
}

TEST(Planner, PreferredRepresentativesWin) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  root.children.push_back(shared_net("hubA", {"a1.x", "a2.x", "master.x"}));
  root.children.push_back(shared_net("hubB", {"b1.x", "b2.x", "zeta.x"}));
  PlannerOptions options;
  options.preferred_representatives = {"zeta.x"};
  const auto plan = plan_from_tree(root, "master.x", options);
  ASSERT_TRUE(plan.ok());
  const PlannedClique* inter = nullptr;
  for (const auto& clique : plan.value().cliques) {
    if (clique.role == CliqueRole::inter) inter = &clique;
  }
  ASSERT_NE(inter, nullptr);
  EXPECT_TRUE(std::find(inter->members.begin(), inter->members.end(), "zeta.x") !=
              inter->members.end());
}

TEST(Planner, LoneMachinesJoinInterCliqueDirectly) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  EnvNetwork lone;
  lone.kind = NetKind::structural;
  lone.machines = {"lonely.x"};
  root.children.push_back(lone);
  root.children.push_back(shared_net("hub", {"a.x", "b.x", "master.x"}));
  const auto plan = plan_from_tree(root, "master.x");
  ASSERT_TRUE(plan.ok());
  const PlannedClique* inter = nullptr;
  for (const auto& clique : plan.value().cliques) {
    if (clique.role == CliqueRole::inter) inter = &clique;
  }
  ASSERT_NE(inter, nullptr);
  EXPECT_TRUE(std::find(inter->members.begin(), inter->members.end(), "lonely.x") !=
              inter->members.end());
}

TEST(Planner, MaxCliqueSizeSplitsSwitchedNetworks) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  std::vector<std::string> machines;
  for (int i = 0; i < 9; ++i) machines.push_back("n" + std::to_string(i) + ".x");
  root.children.push_back(switched_net("big", machines));
  PlannerOptions options;
  options.max_clique_size = 4;
  const auto plan = plan_from_tree(root, "n0.x", options);
  ASSERT_TRUE(plan.ok());
  std::size_t switched_cliques = 0;
  std::string pivot;
  for (const auto& clique : plan.value().cliques) {
    if (clique.role != CliqueRole::switched_all) continue;
    ++switched_cliques;
    EXPECT_LE(clique.members.size(), 4u);
    if (pivot.empty()) pivot = clique.members.front();
    // The pivot member stitches all sub-cliques together.
    EXPECT_TRUE(std::find(clique.members.begin(), clique.members.end(), pivot) !=
                clique.members.end());
  }
  EXPECT_GE(switched_cliques, 3u);
}

TEST(Planner, EmptyTreeIsRejected) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  EXPECT_FALSE(plan_from_tree(root, "m.x").ok());
}

TEST(Planner, ExperimentsPerCycleCountsOrderedPairs) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  root.children.push_back(switched_net("sw", {"a.x", "b.x", "c.x"}));
  const auto plan = plan_from_tree(root, "a.x");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().experiments_per_cycle(), 6u);  // 3*2 ordered pairs
}

}  // namespace
}  // namespace envnws::deploy
