#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "common/units.hpp"
#include "core/autodeploy.hpp"
#include "deploy/plan.hpp"
#include "deploy/validate.hpp"

namespace envnws::deploy {
namespace {

using units::mbps;

TEST(PlanMisc, FindCliqueByName) {
  DeploymentPlan plan;
  PlannedClique clique;
  clique.name = "x";
  plan.cliques.push_back(clique);
  EXPECT_NE(plan.find_clique("x"), nullptr);
  EXPECT_EQ(plan.find_clique("y"), nullptr);
}

TEST(PlanMisc, RenderListsEverything) {
  DeploymentPlan plan;
  plan.master = "m";
  plan.nameserver_host = "m";
  plan.forecaster_host = "m";
  plan.memory_hosts = {"m", "g"};
  plan.use_host_locks = true;
  PlannedClique clique;
  clique.name = "c1";
  clique.role = CliqueRole::shared_pair;
  clique.members = {"a", "b"};
  clique.network_label = "hub";
  plan.cliques.push_back(clique);
  Substitution sub;
  sub.network_label = "hub";
  sub.covered = {"a", "b", "c"};
  sub.rep_a = "a";
  sub.rep_b = "b";
  plan.substitutions.push_back(sub);
  const std::string out = plan.render();
  for (const char* needle : {"master: m", "host locks", "c1", "shared-pair", "hub",
                             "any pair of {a, b, c}", "experiments per cycle: 2"}) {
    EXPECT_TRUE(strings::contains(out, needle)) << "missing: " << needle << "\n" << out;
  }
}

TEST(PlanMisc, ExperimentsPerCycleIgnoresDegenerateCliques) {
  DeploymentPlan plan;
  PlannedClique lone;
  lone.name = "lone";
  lone.members = {"only"};
  plan.cliques.push_back(lone);
  EXPECT_EQ(plan.experiments_per_cycle(), 0u);
}

TEST(ValidateMisc, RenderShowsViolations) {
  auto scenario = simnet::star_hub(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  DeploymentPlan plan;
  plan.master = "h0.lan";
  plan.nameserver_host = "h0.lan";
  plan.forecaster_host = "h0.lan";
  plan.hosts = {"h0.lan", "h1.lan", "h2.lan", "h3.lan"};
  for (int c = 0; c < 2; ++c) {
    PlannedClique clique;
    clique.name = "c" + std::to_string(c);
    clique.role = CliqueRole::shared_pair;
    clique.members = {"h" + std::to_string(2 * c) + ".lan",
                      "h" + std::to_string(2 * c + 1) + ".lan"};
    plan.cliques.push_back(clique);
  }
  const ValidationReport report = validate_plan(plan, net);
  const std::string out = report.render();
  EXPECT_TRUE(strings::contains(out, "VIOLATIONS"));
  EXPECT_TRUE(strings::contains(out, "NO"));
  EXPECT_TRUE(strings::contains(out, "uncovered"));
}

TEST(ValidateMisc, ToleranceOptionControlsFindings) {
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);
  auto result = core::auto_deploy(net, scenario);
  ASSERT_TRUE(result.ok());
  // With a 60% tolerance even the asymmetric-return collisions pass.
  ValidatorOptions relaxed;
  relaxed.collision_tolerance = 0.6;
  const ValidationReport report = validate_plan(result.value().plan, net, relaxed);
  EXPECT_TRUE(report.collision_free);
  // The worst error is still *reported* regardless of tolerance.
  EXPECT_GT(report.worst_collision_error, 0.4);
  result.value().system->stop();
}

TEST(QueryMisc, UnknownHostsAreNotCoverable) {
  DeploymentPlan plan;
  PlannedClique clique;
  clique.name = "c";
  clique.members = {"a", "b"};
  plan.cliques.push_back(clique);
  const CoverageGraph coverage(plan);
  EXPECT_TRUE(coverage.coverable("a", "b"));
  EXPECT_FALSE(coverage.coverable("a", "ghost"));
  EXPECT_TRUE(coverage.route("ghost", "a").empty());
}

TEST(QueryMisc, RouteIsEmptyForSameHost) {
  DeploymentPlan plan;
  PlannedClique clique;
  clique.name = "c";
  clique.members = {"a", "b"};
  plan.cliques.push_back(clique);
  const CoverageGraph coverage(plan);
  EXPECT_TRUE(coverage.route("a", "a").empty());
  EXPECT_TRUE(coverage.coverable("a", "a"));
}

}  // namespace
}  // namespace envnws::deploy
