// Planner / manager / validator behaviour of the host-lock extension.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/autodeploy.hpp"
#include "deploy/manager.hpp"
#include "deploy/planner.hpp"
#include "deploy/validate.hpp"

namespace envnws::deploy {
namespace {

using env::EnvNetwork;
using env::NetKind;
using units::mbps;

TEST(HostLockPlan, PlannerAssignsParallelTokensToSwitchedCliques) {
  EnvNetwork root;
  root.kind = NetKind::structural;
  EnvNetwork sw;
  sw.kind = NetKind::switched;
  sw.label = "sw";
  sw.machines = {"s1.x", "s2.x", "s3.x", "s4.x", "s5.x", "s6.x"};
  root.children.push_back(sw);
  EnvNetwork hub;
  hub.kind = NetKind::shared;
  hub.label = "hub";
  hub.machines = {"a.x", "b.x", "m.x"};
  root.children.push_back(hub);

  PlannerOptions options;
  options.use_host_locks = true;
  options.switched_parallel_tokens = 2;
  const auto plan = plan_from_tree(root, "m.x", options);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().use_host_locks);
  for (const auto& clique : plan.value().cliques) {
    if (clique.role == CliqueRole::switched_all) {
      EXPECT_EQ(clique.parallel_tokens, 2u);
    } else {
      EXPECT_EQ(clique.parallel_tokens, 1u);  // pairs/inter stay serial
    }
  }
}

TEST(HostLockPlan, ConfigRoundTripKeepsExtensionFields) {
  DeploymentPlan plan;
  plan.master = "m.x";
  plan.nameserver_host = "m.x";
  plan.forecaster_host = "m.x";
  plan.hosts = {"m.x", "a.x", "b.x"};
  plan.use_host_locks = true;
  PlannedClique clique;
  clique.name = "sw";
  clique.role = CliqueRole::switched_all;
  clique.members = {"m.x", "a.x", "b.x"};
  clique.parallel_tokens = 2;
  plan.cliques.push_back(clique);
  const std::string text = generate_config(plan);
  EXPECT_NE(text.find("hostlocks = true"), std::string::npos);
  EXPECT_NE(text.find("tokens = 2"), std::string::npos);
  const auto parsed = parse_config(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().use_host_locks);
  EXPECT_EQ(parsed.value().cliques.front().parallel_tokens, 2u);
}

TEST(HostLockPlan, EnsLyonBecomesCollisionFreeWithHostLocks) {
  // The reproduction finding of FIG3: the paper's plan suffers up to 50%
  // cross-clique error via the asymmetric return path. The colliding
  // experiments always share a representative host, so the paper's own
  // proposed fix — host locks — eliminates every finding.
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);
  core::AutoDeployOptions options;
  options.planner.use_host_locks = true;
  auto result = core::auto_deploy(net, scenario, options);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().validation.collision_free)
      << result.value().validation.render();
  EXPECT_TRUE(result.value().validation.complete);
  // And the deployed system actually runs with locks.
  EXPECT_NE(result.value().system->host_locks(), nullptr);
  net.run_until(net.now() + 300.0);
  EXPECT_GT(result.value().system->host_locks()->acquisitions(), 10u);
  result.value().system->stop();
}

TEST(HostLockPlan, WithoutLocksTheSamePlanHasCollisions) {
  simnet::Scenario scenario = simnet::ens_lyon();
  simnet::Network net(simnet::Scenario(scenario).topology);
  auto result = core::auto_deploy(net, scenario);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().validation.collision_free);
  result.value().system->stop();
}

}  // namespace
}  // namespace envnws::deploy
