#include <gtest/gtest.h>

#include <algorithm>

#include "common/units.hpp"
#include "deploy/manager.hpp"
#include "deploy/planner.hpp"
#include "deploy/query.hpp"
#include "deploy/validate.hpp"
#include "simnet/scenario.hpp"

namespace envnws::deploy {
namespace {

using env::EnvNetwork;
using env::NetKind;
using units::mbps;

DeploymentPlan sample_plan() {
  DeploymentPlan plan;
  plan.master = "m.x";
  plan.nameserver_host = "m.x";
  plan.forecaster_host = "m.x";
  plan.memory_hosts = {"m.x", "gw.x"};
  plan.hosts = {"a.x", "b.x", "c.x", "gw.x", "m.x"};
  PlannedClique clique;
  clique.name = "clique-1-hub";
  clique.role = CliqueRole::shared_pair;
  clique.members = {"a.x", "b.x"};
  clique.network_label = "hub";
  clique.period_s = 7.5;
  plan.cliques.push_back(clique);
  PlannedClique inter;
  inter.name = "clique-2-root";
  inter.role = CliqueRole::inter;
  inter.members = {"a.x", "gw.x", "m.x"};
  inter.network_label = "root";
  plan.cliques.push_back(inter);
  Substitution substitution;
  substitution.network_label = "hub";
  substitution.covered = {"a.x", "b.x", "c.x"};
  substitution.rep_a = "a.x";
  substitution.rep_b = "b.x";
  plan.substitutions.push_back(substitution);
  return plan;
}

TEST(ManagerConfig, GenerateParseRoundTrip) {
  const DeploymentPlan plan = sample_plan();
  const std::string text = generate_config(plan);
  const auto parsed = parse_config(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const DeploymentPlan& back = parsed.value();
  EXPECT_EQ(back.master, plan.master);
  EXPECT_EQ(back.memory_hosts, plan.memory_hosts);
  EXPECT_EQ(back.hosts, plan.hosts);
  ASSERT_EQ(back.cliques.size(), plan.cliques.size());
  EXPECT_EQ(back.cliques[0].name, plan.cliques[0].name);
  EXPECT_EQ(back.cliques[0].role, CliqueRole::shared_pair);
  EXPECT_EQ(back.cliques[0].members, plan.cliques[0].members);
  EXPECT_DOUBLE_EQ(back.cliques[0].period_s, 7.5);
  ASSERT_EQ(back.substitutions.size(), 1u);
  EXPECT_EQ(back.substitutions[0].rep_b, "b.x");
  EXPECT_EQ(back.substitutions[0].covered, plan.substitutions[0].covered);
  // Round-trip is a fixed point.
  EXPECT_EQ(generate_config(back), text);
}

TEST(ManagerConfig, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_config("nonsense without section").ok());
  EXPECT_FALSE(parse_config("[global]\nunknown = 1\n").ok());
  EXPECT_FALSE(parse_config("[clique c]\nrole = bogus\n").ok());
  EXPECT_FALSE(parse_config("[weird]\n").ok());
  EXPECT_FALSE(parse_config("[global]\nnameserver = x\n").ok());  // no master
  EXPECT_FALSE(parse_config("[substitution s]\nrepresentative = only-one\n").ok());
}

TEST(ManagerConfig, ParseRejectsMalformedNumbersAsProtocolErrors) {
  // A hand-edited config with a non-numeric period/probe/tokens value
  // used to throw a bare std::stod/stoll/stoull exception through
  // parse_config; every case must come back as a Result instead.
  for (const char* line :
       {"period = fast", "period = 7.5s", "probe = lots", "probe = 1e3x",
        "tokens = -1", "tokens = many", "tokens = 99999999999999999999999"}) {
    const std::string text = std::string("[clique c]\n") + line + "\nmembers = a.x\n";
    auto parsed = parse_config(text);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.error().code, ErrorCode::protocol) << line;
    // The error names the malformed value, not a downstream complaint.
    EXPECT_NE(parsed.error().message.find("bad clique"), std::string::npos)
        << parsed.error().message;
  }
}

TEST(ManagerConfig, LocalAssignmentExtractsPerHostDuties) {
  const DeploymentPlan plan = sample_plan();
  const HostAssignment master = local_assignment(plan, "m.x");
  EXPECT_TRUE(master.nameserver);
  EXPECT_TRUE(master.forecaster);
  EXPECT_TRUE(master.memory);
  EXPECT_TRUE(master.host_sensor);
  ASSERT_EQ(master.cliques.size(), 1u);
  EXPECT_EQ(master.cliques[0], "clique-2-root");

  const HostAssignment a = local_assignment(plan, "a.x");
  EXPECT_FALSE(a.nameserver);
  EXPECT_EQ(a.cliques.size(), 2u);
  const HostAssignment c = local_assignment(plan, "c.x");
  EXPECT_TRUE(c.cliques.empty());
  EXPECT_TRUE(c.host_sensor);
  EXPECT_NE(master.render().find("nameserver"), std::string::npos);
}

TEST(Manager, ApplyPlanRejectsUnknownHosts) {
  auto scenario = simnet::star_switch(3, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  DeploymentPlan plan;
  plan.master = "ghost";
  plan.nameserver_host = "ghost";
  plan.forecaster_host = "ghost";
  plan.hosts = {"ghost"};
  EXPECT_FALSE(apply_plan(plan, net).ok());
}

TEST(Manager, ApplyPlanStartsWorkingSystem) {
  auto scenario = simnet::star_switch(3, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  DeploymentPlan plan;
  plan.master = "h0.lan";
  plan.nameserver_host = "h0.lan";
  plan.forecaster_host = "h0.lan";
  plan.memory_hosts = {"h0.lan"};
  plan.hosts = {"h0.lan", "h1.lan", "h2.lan"};
  PlannedClique clique;
  clique.name = "all";
  clique.role = CliqueRole::switched_all;
  clique.members = plan.hosts;
  clique.period_s = 2.0;
  plan.cliques.push_back(clique);
  auto system = apply_plan(plan, net);
  ASSERT_TRUE(system.ok()) << system.error().to_string();
  net.run_until(120.0);
  EXPECT_GT(system.value()->total_measurements(), 20u);
  // fqdn resolution worked: series are stored under node names.
  EXPECT_NE(system.value()->find_series({nws::ResourceKind::bandwidth, "h0", "h1"}), nullptr);
  system.value()->stop();
}

TEST(Coverage, DirectSubstitutedAggregatedRoutes) {
  const DeploymentPlan plan = sample_plan();
  const CoverageGraph coverage(plan);
  // Direct clique pair.
  ASSERT_NE(coverage.measured_pair("a.x", "b.x"), nullptr);
  // Substituted: (b.x, c.x) answered by (a.x, b.x).
  const auto* substituted = coverage.measured_pair("b.x", "c.x");
  ASSERT_NE(substituted, nullptr);
  EXPECT_EQ(substituted->first, "a.x");
  // Aggregated: c.x -> gw.x via the hub then the inter clique.
  const auto route = coverage.route("c.x", "gw.x");
  ASSERT_GE(route.size(), 2u);
  EXPECT_TRUE(coverage.coverable("c.x", "m.x"));
  EXPECT_TRUE(coverage.coverable("b.x", "m.x"));
  EXPECT_FALSE(coverage.coverable("c.x", "unknown.x"));
  EXPECT_TRUE(coverage.coverable("a.x", "a.x"));
}

TEST(Validate, CleanPlanOnSwitchPasses) {
  auto scenario = simnet::star_switch(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  DeploymentPlan plan;
  plan.master = "h0.lan";
  plan.nameserver_host = "h0.lan";
  plan.forecaster_host = "h0.lan";
  plan.hosts = {"h0.lan", "h1.lan", "h2.lan", "h3.lan"};
  PlannedClique clique;
  clique.name = "all";
  clique.role = CliqueRole::switched_all;
  clique.members = plan.hosts;
  plan.cliques.push_back(clique);
  const ValidationReport report = validate_plan(plan, net);
  EXPECT_TRUE(report.collision_free);  // single clique: serialized by token
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.max_clique_size, 4u);
  EXPECT_EQ(report.experiments_per_cycle, 12u);
  EXPECT_NE(report.render().find("OK"), std::string::npos);
}

TEST(Validate, DetectsCrossCliqueCollisionOnHub) {
  auto scenario = simnet::star_hub(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  DeploymentPlan plan;
  plan.master = "h0.lan";
  plan.nameserver_host = "h0.lan";
  plan.forecaster_host = "h0.lan";
  plan.hosts = {"h0.lan", "h1.lan", "h2.lan", "h3.lan"};
  for (int c = 0; c < 2; ++c) {
    PlannedClique clique;
    clique.name = "c" + std::to_string(c);
    clique.role = CliqueRole::shared_pair;
    clique.members = {"h" + std::to_string(2 * c) + ".lan",
                      "h" + std::to_string(2 * c + 1) + ".lan"};
    plan.cliques.push_back(clique);
  }
  const ValidationReport report = validate_plan(plan, net);
  // Two cliques on ONE hub: experiments share the medium -> ~50% error.
  EXPECT_FALSE(report.collision_free);
  EXPECT_NEAR(report.worst_collision_error, 0.5, 0.01);
  EXPECT_FALSE(report.collisions.empty());
  // And substitution entries are missing: pairs across the split
  // cliques are unanswerable -> incomplete.
  EXPECT_FALSE(report.complete);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, SubstitutionRestoresCompleteness) {
  auto scenario = simnet::star_hub(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  DeploymentPlan plan;
  plan.master = "h0.lan";
  plan.nameserver_host = "h0.lan";
  plan.forecaster_host = "h0.lan";
  plan.hosts = {"h0.lan", "h1.lan", "h2.lan", "h3.lan"};
  PlannedClique clique;
  clique.name = "pair";
  clique.role = CliqueRole::shared_pair;
  clique.members = {"h0.lan", "h1.lan"};
  plan.cliques.push_back(clique);
  Substitution substitution;
  substitution.network_label = "hub";
  substitution.covered = plan.hosts;
  substitution.rep_a = "h0.lan";
  substitution.rep_b = "h1.lan";
  plan.substitutions.push_back(substitution);
  const ValidationReport report = validate_plan(plan, net);
  EXPECT_TRUE(report.collision_free);
  EXPECT_TRUE(report.complete);
}

}  // namespace
}  // namespace envnws::deploy
