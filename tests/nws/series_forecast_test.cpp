#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nws/forecast.hpp"
#include "nws/series.hpp"

namespace envnws::nws {
namespace {

TEST(Series, RingBufferDropsOldest) {
  TimeSeries series(3);
  for (int i = 0; i < 5; ++i) series.add(i, i * 10.0);
  EXPECT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.at(0).value, 20.0);
  EXPECT_DOUBLE_EQ(series.latest().value, 40.0);
}

TEST(Series, MeanPeriod) {
  TimeSeries series;
  series.add(0.0, 1.0);
  series.add(10.0, 1.0);
  series.add(20.0, 1.0);
  EXPECT_DOUBLE_EQ(series.mean_period(), 10.0);
  TimeSeries single;
  single.add(5.0, 1.0);
  EXPECT_DOUBLE_EQ(single.mean_period(), 0.0);
}

TEST(Series, KeyOrderingAndNames) {
  const SeriesKey a{ResourceKind::bandwidth, "a", "b"};
  const SeriesKey b{ResourceKind::latency, "a", "b"};
  const SeriesKey c{ResourceKind::bandwidth, "a", "c"};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (SeriesKey{ResourceKind::bandwidth, "a", "b"}));
  EXPECT_EQ(a.to_string(), "bandwidth:a->b");
  EXPECT_EQ((SeriesKey{ResourceKind::cpu, "h", ""}).to_string(), "availableCpu:h");
  EXPECT_TRUE(is_network_resource(ResourceKind::connect_time));
  EXPECT_FALSE(is_network_resource(ResourceKind::cpu));
}

TEST(Forecast, LastValuePredictsLast) {
  auto predictor = make_last_value();
  predictor->update(5.0);
  predictor->update(7.0);
  EXPECT_DOUBLE_EQ(predictor->predict(), 7.0);
}

TEST(Forecast, RunningMean) {
  auto predictor = make_running_mean();
  for (double v : {2.0, 4.0, 6.0}) predictor->update(v);
  EXPECT_DOUBLE_EQ(predictor->predict(), 4.0);
}

TEST(Forecast, SlidingMeanWindow) {
  auto predictor = make_sliding_mean(2);
  for (double v : {100.0, 2.0, 4.0}) predictor->update(v);
  EXPECT_DOUBLE_EQ(predictor->predict(), 3.0);  // window holds {2, 4}
}

TEST(Forecast, SlidingMedianResistsOutliers) {
  auto predictor = make_sliding_median(5);
  for (double v : {10.0, 10.0, 1000.0, 10.0, 10.0}) predictor->update(v);
  EXPECT_DOUBLE_EQ(predictor->predict(), 10.0);
}

TEST(Forecast, TrimmedMeanResistsOutliers) {
  auto predictor = make_trimmed_mean(10, 0.2);
  for (double v : {10.0, 10.0, 10.0, 10.0, 500.0}) predictor->update(v);
  EXPECT_NEAR(predictor->predict(), 10.0, 1.0);
}

TEST(Forecast, ExponentialSmoothingTracks) {
  auto predictor = make_exponential_smoothing(0.5);
  predictor->update(0.0);
  predictor->update(10.0);
  EXPECT_DOUBLE_EQ(predictor->predict(), 5.0);
  predictor->update(10.0);
  EXPECT_DOUBLE_EQ(predictor->predict(), 7.5);
}

TEST(Forecast, MomentumExtrapolatesTrend) {
  auto predictor = make_momentum();
  predictor->update(10.0);
  predictor->update(12.0);
  EXPECT_DOUBLE_EQ(predictor->predict(), 14.0);
}

TEST(Forecast, AdaptiveSmoothingConverges) {
  auto predictor = make_adaptive_smoothing(0.3);
  for (int i = 0; i < 200; ++i) predictor->update(42.0);
  EXPECT_NEAR(predictor->predict(), 42.0, 0.5);
}

TEST(Forecast, AdaptiveForecasterPerfectOnConstantSeries) {
  AdaptiveForecaster forecaster;
  for (int i = 0; i < 50; ++i) forecaster.observe(10.0);
  const Forecast forecast = forecaster.forecast();
  EXPECT_NEAR(forecast.value, 10.0, 1e-9);
  EXPECT_NEAR(forecast.mae, 0.0, 1e-9);
  EXPECT_EQ(forecast.samples, 50u);
}

TEST(Forecast, AdaptiveForecasterPicksTrendFollowerOnRamp) {
  AdaptiveForecaster forecaster;
  for (int i = 0; i < 100; ++i) forecaster.observe(static_cast<double>(i));
  const Forecast forecast = forecaster.forecast();
  // Momentum predicts i+1 exactly on a linear ramp.
  EXPECT_EQ(forecast.winner, "momentum");
  EXPECT_NEAR(forecast.value, 100.0, 1e-9);
}

TEST(Forecast, AdaptiveForecasterPrefersSmoothingOnNoise) {
  Rng rng(5);
  AdaptiveForecaster forecaster;
  for (int i = 0; i < 500; ++i) forecaster.observe(50.0 + rng.normal(0.0, 5.0));
  const Forecast forecast = forecaster.forecast();
  // On white noise around a constant, an averaging predictor must beat
  // last-value; its error estimate should be near the noise sigma.
  EXPECT_NE(forecast.winner, "last");
  EXPECT_NE(forecast.winner, "momentum");
  EXPECT_NEAR(forecast.value, 50.0, 2.0);
  EXPECT_LT(forecast.rmse, 7.0);
}

TEST(Forecast, AdaptiveBeatsOrMatchesEveryPredictorItTracks) {
  Rng rng(11);
  AdaptiveForecaster forecaster;
  // Regime switch: constant, then ramp, then noisy constant.
  std::vector<double> trace;
  for (int i = 0; i < 100; ++i) trace.push_back(20.0);
  for (int i = 0; i < 100; ++i) trace.push_back(20.0 + i * 0.5);
  for (int i = 0; i < 100; ++i) trace.push_back(70.0 + rng.normal(0.0, 2.0));
  for (double v : trace) forecaster.observe(v);
  const auto errors = forecaster.predictor_errors();
  double best = 1e18;
  for (const auto& [name, mae] : errors) best = std::min(best, mae);
  // The selector's winner is the argmin-MSE predictor; its MAE should be
  // close to the best MAE in the battery (not identical: MSE vs MAE).
  EXPECT_LE(forecaster.forecast().mae, best * 1.5 + 1e-9);
}

TEST(Forecast, EmptyForecasterIsSane) {
  AdaptiveForecaster forecaster;
  const Forecast forecast = forecaster.forecast();
  EXPECT_EQ(forecast.samples, 0u);
  EXPECT_DOUBLE_EQ(forecast.value, 0.0);
}

// --- parameterized: winner matches trace family ---------------------------

struct TraceCase {
  const char* name;
  int kind;  // 0 constant, 1 ramp, 2 noisy, 3 periodic
};

class ForecastFamilies : public ::testing::TestWithParam<TraceCase> {};

TEST_P(ForecastFamilies, ErrorStaysBounded) {
  Rng rng(7);
  AdaptiveForecaster forecaster;
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) {
    double v = 0.0;
    switch (GetParam().kind) {
      case 0: v = 10.0; break;
      case 1: v = 0.1 * i; break;
      case 2: v = 30.0 + rng.normal(0.0, 3.0); break;
      case 3: v = 50.0 + 10.0 * std::sin(i / 10.0); break;
      default: break;
    }
    values.push_back(v);
    forecaster.observe(v);
  }
  const Forecast forecast = forecaster.forecast();
  // The winner's RMSE must be well under the trace's own standard
  // deviation (i.e. forecasting beats guessing the mean).
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  const double sigma = std::sqrt(var / static_cast<double>(values.size()));
  EXPECT_LT(forecast.rmse, std::max(0.5 * sigma, 4.0)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Families, ForecastFamilies,
                         ::testing::Values(TraceCase{"constant", 0}, TraceCase{"ramp", 1},
                                           TraceCase{"noisy", 2}, TraceCase{"periodic", 3}),
                         [](const ::testing::TestParamInfo<TraceCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace envnws::nws
