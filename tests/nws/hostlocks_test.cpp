// Tests for the host-level lock extension (paper conclusion: "a
// possibility to lock hosts (and not networks) is still needed").
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "nws/hostlocks.hpp"
#include "nws/system.hpp"
#include "simnet/scenario.hpp"

namespace envnws::nws {
namespace {

using simnet::NodeId;
using units::mbps;

TEST(HostLocks, AcquireReleaseCycle) {
  HostLockService locks;
  EXPECT_TRUE(locks.try_acquire(NodeId(1), NodeId(2)));
  EXPECT_TRUE(locks.is_locked(NodeId(1)));
  EXPECT_TRUE(locks.is_locked(NodeId(2)));
  EXPECT_FALSE(locks.is_locked(NodeId(3)));
  locks.release(NodeId(1), NodeId(2));
  EXPECT_FALSE(locks.is_locked(NodeId(1)));
  EXPECT_EQ(locks.acquisitions(), 1u);
  EXPECT_EQ(locks.conflicts(), 0u);
}

TEST(HostLocks, ConflictOnSharedEndpoint) {
  HostLockService locks;
  ASSERT_TRUE(locks.try_acquire(NodeId(1), NodeId(2)));
  EXPECT_FALSE(locks.try_acquire(NodeId(2), NodeId(3)));  // 2 busy
  EXPECT_FALSE(locks.try_acquire(NodeId(3), NodeId(1)));  // 1 busy
  EXPECT_TRUE(locks.try_acquire(NodeId(3), NodeId(4)));   // disjoint: fine
  EXPECT_EQ(locks.conflicts(), 2u);
  // A denied acquire must not leave partial state behind.
  locks.release(NodeId(1), NodeId(2));
  EXPECT_TRUE(locks.try_acquire(NodeId(2), NodeId(1)));
}

TEST(HostLocks, CliqueWithLocksStillMeasuresEverything) {
  auto scenario = simnet::star_switch(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "h0";
  config.enable_host_locks = true;
  NwsSystem system(net, config);
  CliqueSpec spec;
  spec.name = "locked";
  spec.period_s = 2.0;
  for (int i = 0; i < 4; ++i) {
    spec.members.push_back(net.topology().find_by_name("h" + std::to_string(i)).value());
  }
  system.add_clique(spec);
  system.start();
  net.run_until(600.0);
  ASSERT_NE(system.host_locks(), nullptr);
  EXPECT_GT(system.host_locks()->acquisitions(), 50u);
  for (const std::string src : {"h0", "h1"}) {
    for (const std::string dst : {"h2", "h3"}) {
      EXPECT_NE(system.find_series({ResourceKind::bandwidth, src, dst}), nullptr)
          << src << "->" << dst;
    }
  }
  // Nothing leaked: all hosts unlocked while the ring idles between
  // experiments is not guaranteed at an arbitrary instant, but total
  // acquisitions must match total experiments.
  EXPECT_EQ(system.host_locks()->acquisitions(),
            system.cliques().front()->experiments_run() +
                system.cliques().front()->lock_waits() * 0);
  system.stop();
}

TEST(HostLocks, CrossCliqueExperimentsOnSharedHostSerialize) {
  // Two cliques sharing host h1, both paced fast: without locks their
  // experiments overlap at h1; with locks one of them must wait.
  auto scenario = simnet::star_switch(3, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "h0";
  config.enable_host_locks = true;
  NwsSystem system(net, config);
  const NodeId h0 = net.topology().find_by_name("h0").value();
  const NodeId h1 = net.topology().find_by_name("h1").value();
  const NodeId h2 = net.topology().find_by_name("h2").value();
  CliqueSpec a;
  a.name = "a";
  a.period_s = 1.0;
  a.members = {h0, h1};
  CliqueSpec b;
  b.name = "b";
  b.period_s = 1.0;
  b.members = {h1, h2};
  system.add_clique(a);
  system.add_clique(b);
  system.start();
  net.run_until(600.0);
  // Both cliques made progress...
  EXPECT_GT(system.cliques()[0]->experiments_run(), 100u);
  EXPECT_GT(system.cliques()[1]->experiments_run(), 100u);
  // ...and contention on h1 was actually exercised.
  const std::uint64_t waits =
      system.cliques()[0]->lock_waits() + system.cliques()[1]->lock_waits();
  EXPECT_GT(waits, 0u);
  system.stop();
}

TEST(HostLocks, ParallelTokensMultiplySwitchedThroughput) {
  const auto run = [](std::size_t tokens) {
    auto scenario = simnet::star_switch(6, mbps(100));
    simnet::Network net(std::move(scenario.topology));
    SystemConfig config;
    config.nameserver_host = "h0";
    config.enable_host_locks = true;
    NwsSystem system(net, config);
    CliqueSpec spec;
    spec.name = "par";
    spec.period_s = 2.0;
    spec.parallel_tokens = tokens;
    for (int i = 0; i < 6; ++i) {
      spec.members.push_back(net.topology().find_by_name("h" + std::to_string(i)).value());
    }
    system.add_clique(spec);
    system.start();
    net.run_until(2000.0);
    const std::uint64_t experiments = system.cliques().front()->experiments_run();
    system.stop();
    return experiments;
  };
  const std::uint64_t serial = run(1);
  const std::uint64_t parallel = run(3);
  // Three tokens on a 6-member switched clique: close to 3x the
  // experiment throughput (lock conflicts cost a little).
  EXPECT_GT(parallel, serial * 2);
}

TEST(HostLocks, ParallelTokensWithoutLockServiceDegradeToOne) {
  auto scenario = simnet::star_switch(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "h0";
  config.enable_host_locks = false;  // no lock service
  NwsSystem system(net, config);
  CliqueSpec spec;
  spec.name = "no-locks";
  spec.period_s = 2.0;
  spec.parallel_tokens = 4;  // must be ignored
  for (int i = 0; i < 4; ++i) {
    spec.members.push_back(net.topology().find_by_name("h" + std::to_string(i)).value());
  }
  Clique& clique = system.add_clique(spec);
  system.start();
  net.run_until(200.0);
  // Single-token pace: ~1 experiment per period.
  EXPECT_LE(clique.experiments_run(), 110u);
  system.stop();
}

TEST(HostLocks, RegenerationReleasesLeakedLocks) {
  // Kill the token holder between token delivery and its experiment:
  // the token dies while NO locks are held; then kill it mid-experiment
  // window instead: locks held at death must be force-released on
  // regeneration so the survivors can keep measuring.
  auto scenario = simnet::star_switch(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "h0";
  config.enable_host_locks = true;
  NwsSystem system(net, config);
  CliqueSpec spec;
  spec.name = "ring";
  spec.period_s = 2.0;
  for (int i = 1; i <= 3; ++i) {
    spec.members.push_back(net.topology().find_by_name("h" + std::to_string(i)).value());
  }
  system.add_clique(spec);
  system.start();
  net.run_until(1.0);
  net.set_host_up(net.topology().find_by_name("h1").value(), false);
  net.run_until(400.0);
  EXPECT_GE(system.cliques().front()->regenerations(), 1u);
  const TimeSeries* survivors = system.find_series({ResourceKind::bandwidth, "h2", "h3"});
  ASSERT_NE(survivors, nullptr);
  EXPECT_GT(survivors->latest().time, 200.0);
  system.stop();
}

}  // namespace
}  // namespace envnws::nws
