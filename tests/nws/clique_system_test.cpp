#include <gtest/gtest.h>

#include "common/units.hpp"
#include "nws/system.hpp"
#include "simnet/scenario.hpp"

namespace envnws::nws {
namespace {

using simnet::NodeId;
using units::mbps;

std::unique_ptr<NwsSystem> make_switch_system(simnet::Network& net, int members,
                                              double period = 5.0,
                                              CliqueSpec* spec_out = nullptr) {
  SystemConfig config;
  config.nameserver_host = "h0";
  config.forecaster_host = "h0";
  config.memory_hosts = {"h0"};
  auto system = std::make_unique<NwsSystem>(net, config);
  CliqueSpec spec;
  spec.name = "test-clique";
  spec.period_s = period;
  for (int i = 0; i < members; ++i) {
    spec.members.push_back(net.topology().find_by_name("h" + std::to_string(i)).value());
  }
  if (spec_out != nullptr) *spec_out = spec;
  system->add_clique(spec);
  return system;
}

TEST(Clique, MeasuresEveryOrderedPair) {
  auto scenario = simnet::star_switch(3, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  auto system = make_switch_system(net, 3);
  system->start();
  net.run_until(500.0);
  // 6 ordered pairs; ~100 experiments in 500s at period 5 -> every pair
  // visited several times, with bandwidth, latency and connect series.
  for (const std::string src : {"h0", "h1", "h2"}) {
    for (const std::string dst : {"h0", "h1", "h2"}) {
      if (src == dst) continue;
      const TimeSeries* bw = system->find_series({ResourceKind::bandwidth, src, dst});
      ASSERT_NE(bw, nullptr) << src << "->" << dst;
      EXPECT_GE(bw->size(), 5u);
      EXPECT_NEAR(bw->latest().value, mbps(100), mbps(8));
      EXPECT_NE(system->find_series({ResourceKind::latency, src, dst}), nullptr);
      EXPECT_NE(system->find_series({ResourceKind::connect_time, src, dst}), nullptr);
    }
  }
  const auto& clique = *system->cliques().front();
  EXPECT_GT(clique.experiments_run(), 50u);
  EXPECT_GT(clique.token_passes(), 50u);
  EXPECT_EQ(clique.regenerations(), 0u);
  system->stop();
}

TEST(Clique, TokenSerializesExperiments) {
  // On a shared 10 Mbps hub, colliding experiments would read ~5 Mbps.
  // With the token ring, every reading stays at the full medium rate.
  auto scenario = simnet::star_hub(4, mbps(10));
  simnet::Network net(std::move(scenario.topology));
  auto system = make_switch_system(net, 4, 2.0);
  system->start();
  net.run_until(600.0);
  for (const auto& key : system->all_series_keys()) {
    if (key.resource != ResourceKind::bandwidth) continue;
    const TimeSeries* series = system->find_series(key);
    ASSERT_NE(series, nullptr);
    for (const double v : series->values()) {
      EXPECT_GT(v, mbps(9)) << key.to_string() << " saw a collided measurement";
    }
  }
  system->stop();
}

TEST(Clique, MeasurementFrequencyDropsWithSize) {
  // CLAIM-CLIQUE in miniature: the per-pair frequency decays ~ 1/(k(k-1)).
  double period_small = 0.0;
  double period_large = 0.0;
  {
    auto scenario = simnet::star_switch(3, mbps(100));
    simnet::Network net(std::move(scenario.topology));
    auto system = make_switch_system(net, 3, 2.0);
    system->start();
    net.run_until(2000.0);
    period_small =
        system->find_series({ResourceKind::bandwidth, "h0", "h1"})->mean_period();
    system->stop();
  }
  {
    auto scenario = simnet::star_switch(8, mbps(100));
    simnet::Network net(std::move(scenario.topology));
    auto system = make_switch_system(net, 8, 2.0);
    system->start();
    net.run_until(2000.0);
    period_large =
        system->find_series({ResourceKind::bandwidth, "h0", "h1"})->mean_period();
    system->stop();
  }
  // 3 members: 6 pairs/cycle; 8 members: 56 pairs/cycle -> ~9.3x slower.
  EXPECT_GT(period_large, period_small * 6.0);
}

TEST(Clique, TokenRegenerationAfterHolderDies) {
  // Infrastructure (name server / memory) lives on h0, OUTSIDE the
  // clique, so killing the token holder does not take the storage down.
  auto scenario = simnet::star_switch(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "h0";
  NwsSystem system(net, config);
  CliqueSpec spec;
  spec.name = "ring";
  spec.period_s = 2.0;
  for (int i = 1; i <= 3; ++i) {
    spec.members.push_back(net.topology().find_by_name("h" + std::to_string(i)).value());
  }
  system.add_clique(spec);
  system.start();
  // The token is delivered to the first pair's source (h1) at t=0; its
  // first experiment fires at t=period. Killing h1 in between
  // deterministically loses the token: the watchdog must elect the
  // lowest-ranked alive member and regenerate.
  net.run_until(1.0);
  net.set_host_up(net.topology().find_by_name("h1").value(), false);
  net.run_until(300.0);
  const auto& clique = *system.cliques().front();
  EXPECT_GE(clique.regenerations(), 1u);
  // Measurements between the survivors continue after the recovery.
  const TimeSeries* survivors = system.find_series({ResourceKind::bandwidth, "h2", "h3"});
  ASSERT_NE(survivors, nullptr);
  EXPECT_GT(survivors->latest().time, 100.0);
  system.stop();
}

TEST(Clique, DeadMembersAreSkippedWithoutTokenLoss) {
  auto scenario = simnet::star_switch(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  auto system = make_switch_system(net, 4, 2.0);
  system->start();
  net.run_until(50.0);
  // Kill a member while it does NOT hold the token (right after one of
  // its experiments completed the ring has moved on): the pass logic
  // must route around it with no regeneration at all.
  const auto& clique = *system->cliques().front();
  const std::uint64_t experiments_before = clique.experiments_run();
  net.set_host_up(net.topology().find_by_name("h3").value(), false);
  net.run_until(250.0);
  EXPECT_GT(clique.experiments_run(), experiments_before + 20u);
  const TimeSeries* survivors = system->find_series({ResourceKind::bandwidth, "h1", "h2"});
  ASSERT_NE(survivors, nullptr);
  EXPECT_GT(survivors->latest().time, 200.0);
  system->stop();
}

TEST(Clique, RecoversWhenHostComesBack) {
  auto scenario = simnet::star_switch(3, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  auto system = make_switch_system(net, 3, 2.0);
  system->start();
  net.run_until(30.0);
  const NodeId h0 = net.topology().find_by_name("h0").value();
  net.set_host_up(h0, false);
  net.run_until(120.0);
  net.set_host_up(h0, true);
  net.run_until(400.0);
  // h0's pairs are measured again after it rejoins.
  const TimeSeries* back = system->find_series({ResourceKind::bandwidth, "h0", "h1"});
  ASSERT_NE(back, nullptr);
  EXPECT_GT(back->latest().time, 150.0);
  system->stop();
}

TEST(Clique, ExplicitPairListRestrictsExperiments) {
  auto scenario = simnet::star_switch(4, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "h0";
  NwsSystem system(net, config);
  CliqueSpec spec;
  spec.name = "pair-clique";
  spec.period_s = 2.0;
  const NodeId h0 = net.topology().find_by_name("h0").value();
  const NodeId h1 = net.topology().find_by_name("h1").value();
  spec.members = {h0, h1};
  spec.pairs = {{h0, h1}};  // one direction only
  system.add_clique(spec);
  system.start();
  net.run_until(100.0);
  EXPECT_NE(system.find_series({ResourceKind::bandwidth, "h0", "h1"}), nullptr);
  EXPECT_EQ(system.find_series({ResourceKind::bandwidth, "h1", "h0"}), nullptr);
  system.stop();
}

TEST(System, QueryFollowsPaperMessageFlow) {
  auto scenario = simnet::star_switch(3, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  auto system = make_switch_system(net, 3, 2.0);
  system->start();
  net.run_until(200.0);
  const auto reply = system->query("h2", {ResourceKind::bandwidth, "h0", "h1"});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_NEAR(reply.value().forecast.value, mbps(100), mbps(8));
  EXPECT_GT(reply.value().forecast.samples, 10u);
  EXPECT_GT(reply.value().query_latency_s, 0.0);
  EXPECT_FALSE(reply.value().forecast.winner.empty());
  system->stop();
}

TEST(System, QueryUnknownSeriesFails) {
  auto scenario = simnet::star_switch(3, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  auto system = make_switch_system(net, 3, 2.0);
  system->start();
  const auto reply = system->query("h0", {ResourceKind::bandwidth, "h0", "nope"});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::not_found);
  system->stop();
}

TEST(System, HostSensorsProduceCpuMemoryDiskSeries) {
  auto scenario = simnet::star_switch(2, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "h0";
  config.host_sensor_period_s = 5.0;
  NwsSystem system(net, config);
  system.add_host_sensor("h1");
  system.start();
  net.run_until(120.0);
  for (const ResourceKind kind :
       {ResourceKind::cpu, ResourceKind::memory, ResourceKind::disk}) {
    const TimeSeries* series = system.find_series({kind, "h1", ""});
    ASSERT_NE(series, nullptr);
    EXPECT_GE(series->size(), 20u);
  }
  const auto reply = system.query("h0", {ResourceKind::cpu, "h1", ""});
  ASSERT_TRUE(reply.ok());
  EXPECT_GT(reply.value().forecast.value, 0.0);
  EXPECT_LE(reply.value().forecast.value, 1.0);
  system.stop();
}

TEST(System, UncoordinatedProbesCollideOnHub) {
  // The §2.3 motivation: two uncoordinated monitors on one hub read about
  // half the real bandwidth whenever their probes overlap.
  auto scenario = simnet::star_hub(4, mbps(10));
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "h0";
  NwsSystem system(net, config);
  // Same period => they fire at the same instants and always collide.
  system.add_uncoordinated_probe("h0", "h1", 5.0);
  system.add_uncoordinated_probe("h2", "h3", 5.0);
  system.start();
  net.run_until(300.0);
  const TimeSeries* series = system.find_series({ResourceKind::bandwidth, "h0", "h1"});
  ASSERT_NE(series, nullptr);
  ASSERT_GE(series->size(), 10u);
  // Every reading is collided: ~5 Mbps instead of 10.
  for (const double v : series->values()) EXPECT_LT(v, mbps(6));
  system.stop();
}

TEST(System, NameServerDirectoryIsPopulated) {
  auto scenario = simnet::star_switch(3, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  auto system = make_switch_system(net, 3, 5.0);
  system->add_host_sensor("h2");
  system->start();
  const NameServer& ns = system->nameserver();
  EXPECT_GE(ns.processes().size(), 3u);  // nameserver, forecaster, memory
  EXPECT_GE(ns.known_series().size(), 6u * 3u);
  EXPECT_TRUE(ns.locate_memory({ResourceKind::bandwidth, "h0", "h1"}).ok());
  EXPECT_FALSE(ns.locate_memory({ResourceKind::bandwidth, "x", "y"}).ok());
  system->stop();
}

}  // namespace
}  // namespace envnws::nws
