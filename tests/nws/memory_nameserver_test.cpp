#include <gtest/gtest.h>

#include "common/units.hpp"
#include "nws/memory.hpp"
#include "nws/nameserver.hpp"
#include "nws/system.hpp"
#include "simnet/scenario.hpp"

namespace envnws::nws {
namespace {

using simnet::NodeId;
using units::mbps;

TEST(MemoryServer, StoresAndFinds) {
  MemoryServer memory("mem", NodeId(0), 4);
  const SeriesKey key{ResourceKind::bandwidth, "a", "b"};
  EXPECT_EQ(memory.find(key), nullptr);
  memory.store(key, 1.0, 10.0);
  memory.store(key, 2.0, 20.0);
  const TimeSeries* series = memory.find(key);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2u);
  EXPECT_DOUBLE_EQ(series->latest().value, 20.0);
  EXPECT_EQ(memory.stored_count(), 2u);
}

TEST(MemoryServer, CapacityBoundsEverySeries) {
  MemoryServer memory("mem", NodeId(0), 3);
  const SeriesKey key{ResourceKind::cpu, "h", ""};
  for (int i = 0; i < 10; ++i) memory.store(key, i, i);
  EXPECT_EQ(memory.find(key)->size(), 3u);
  EXPECT_DOUBLE_EQ(memory.find(key)->at(0).value, 7.0);
}

TEST(MemoryServer, SeparatesSeriesByKey) {
  MemoryServer memory("mem", NodeId(0));
  memory.store({ResourceKind::bandwidth, "a", "b"}, 1.0, 1.0);
  memory.store({ResourceKind::bandwidth, "b", "a"}, 1.0, 2.0);
  memory.store({ResourceKind::latency, "a", "b"}, 1.0, 3.0);
  EXPECT_EQ(memory.series().size(), 3u);
}

TEST(NameServer, ProcessAndSeriesRegistry) {
  NameServer ns(NodeId(5));
  EXPECT_EQ(ns.host(), NodeId(5));
  ns.register_process(ProcessInfo{ProcessKind::memory, "mem@h1", NodeId(1)});
  ns.register_process(ProcessInfo{ProcessKind::sensor, "sensor@h2", NodeId(2)});
  EXPECT_EQ(ns.processes().size(), 2u);
  EXPECT_STREQ(to_string(ns.processes()[0].kind), "memory");

  const SeriesKey key{ResourceKind::bandwidth, "h1", "h2"};
  ns.register_series(key, "mem@h1");
  const auto located = ns.locate_memory(key);
  ASSERT_TRUE(located.ok());
  EXPECT_EQ(located.value(), "mem@h1");
  EXPECT_EQ(ns.known_series().size(), 1u);
  EXPECT_EQ(ns.registration_count(), 3u);
}

TEST(NameServer, ReRegistrationOverwrites) {
  NameServer ns(NodeId(0));
  const SeriesKey key{ResourceKind::cpu, "h", ""};
  ns.register_series(key, "mem-a");
  ns.register_series(key, "mem-b");
  EXPECT_EQ(ns.locate_memory(key).value(), "mem-b");
  EXPECT_EQ(ns.known_series().size(), 1u);
}

TEST(System, SeriesCapacityConfigIsHonored) {
  auto scenario = simnet::star_switch(2, mbps(100));
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "h0";
  config.series_capacity = 5;
  config.host_sensor_period_s = 1.0;
  NwsSystem system(net, config);
  system.add_host_sensor("h1");
  system.start();
  net.run_until(100.0);
  const TimeSeries* series = system.find_series({ResourceKind::cpu, "h1", ""});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 5u);  // ring-buffer bounded
  system.stop();
}

TEST(System, QueryLatencyGrowsWithDistanceToInfrastructure) {
  // Client far from the forecaster pays more query round trips.
  auto scenario = simnet::dumbbell(2, 2, mbps(100), mbps(10), /*wan_latency=*/20e-3);
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "l0";  // infrastructure on the left site
  NwsSystem system(net, config);
  CliqueSpec spec;
  spec.name = "left";
  spec.period_s = 2.0;
  spec.members = {net.topology().find_by_name("l0").value(),
                  net.topology().find_by_name("l1").value()};
  system.add_clique(spec);
  system.start();
  net.run_until(120.0);
  const SeriesKey key{ResourceKind::bandwidth, "l0", "l1"};
  const auto near = system.query("l1", key);
  const auto far = system.query("r0", key);
  ASSERT_TRUE(near.ok());
  ASSERT_TRUE(far.ok());
  // The remote client crosses the 20 ms WAN twice (request + reply).
  EXPECT_GT(far.value().query_latency_s, near.value().query_latency_s + 0.03);
  system.stop();
}

TEST(System, MemoryPlacementFollowsReachability) {
  // Firewalled platform: a private clique must store to a memory host
  // its members can reach, regardless of round-robin order.
  auto scenario = simnet::ens_lyon();
  simnet::Network net(std::move(scenario.topology));
  SystemConfig config;
  config.nameserver_host = "the-doors";
  config.memory_hosts = {"the-doors", "popc"};
  NwsSystem system(net, config);
  CliqueSpec spec;
  spec.name = "private-myri";
  spec.period_s = 2.0;
  spec.members = {net.topology().find_by_name("myri1").value(),
                  net.topology().find_by_name("myri2").value()};
  system.add_clique(spec);
  system.start();
  net.run_until(120.0);
  // Measurements arrive even though the first-configured memory host
  // (the-doors) is unreachable from the private zone.
  EXPECT_NE(system.find_series({ResourceKind::bandwidth, "myri1", "myri2"}), nullptr);
  system.stop();
}

}  // namespace
}  // namespace envnws::nws
