// Closed-form contracts of the pluggable link model (link_model.hpp):
// the lossy retransmission algebra, the lv08 capacity/latency
// corrections, the canonical decorator prefixes, the weighted fair-share
// solver they ride on — and the network-level effects (wifi media,
// lossy goodput, tcp cross-traffic) through predicted_rates().
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "simnet/fairshare.hpp"
#include "simnet/link_model.hpp"
#include "simnet/network.hpp"
#include "simnet/scenario.hpp"
#include "common/units.hpp"

namespace envnws::simnet {
namespace {

TEST(LinkModel, RetransmissionFactorClosedForms) {
  // No loss: every segment arrives once.
  EXPECT_DOUBLE_EQ(LinkModelSpec::retransmission_factor(0.0, 0.0), 1.0);
  // Half the segments dropped: each is sent twice on average.
  EXPECT_DOUBLE_EQ(LinkModelSpec::retransmission_factor(50.0, 0.0), 2.0);
  // Loss and corruption compose multiplicatively: 1 / (0.8 * 0.9).
  EXPECT_DOUBLE_EQ(LinkModelSpec::retransmission_factor(20.0, 10.0), 1.0 / 0.72);
  // Degenerate total loss: no goodput, not a division by zero.
  EXPECT_DOUBLE_EQ(LinkModelSpec::retransmission_factor(100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(LinkModelSpec::retransmission_factor(0.0, 100.0), 0.0);
}

TEST(LinkModel, EffectiveCapacityAndLatency) {
  const double nominal = units::mbps(100.0);

  // The ideal model is the identity — bit-identical, not just close.
  const LinkModelSpec ideal = LinkModelSpec::ideal();
  EXPECT_TRUE(ideal.is_ideal());
  EXPECT_EQ(ideal.effective_capacity(nominal), nominal);
  EXPECT_EQ(ideal.effective_latency(50e-6), 50e-6);

  LinkModelSpec tcp;
  tcp.tcp = true;
  EXPECT_DOUBLE_EQ(tcp.effective_capacity(nominal), nominal * 0.97);
  EXPECT_DOUBLE_EQ(tcp.effective_latency(50e-6), 50e-6 * 13.01);
  EXPECT_TRUE(tcp.weighted());

  LinkModelSpec lossy;
  lossy.loss_pct = 2.0;
  lossy.cksum_pct = 1.0;
  // Goodput = capacity / retransmission factor = capacity * delivered.
  EXPECT_DOUBLE_EQ(lossy.effective_capacity(nominal), nominal * 0.98 * 0.99);
  EXPECT_DOUBLE_EQ(lossy.effective_capacity(nominal) *
                       LinkModelSpec::retransmission_factor(2.0, 1.0),
                   nominal * 1.0);
  EXPECT_EQ(lossy.effective_latency(50e-6), 50e-6);  // loss leaves latency alone

  // Corrections stack: tcp * lossy.
  LinkModelSpec both = tcp;
  both.loss_pct = 2.0;
  EXPECT_DOUBLE_EQ(both.effective_capacity(nominal), nominal * 0.97 * 0.98);
}

TEST(LinkModel, DecoratorPrefixesAreCanonical) {
  EXPECT_EQ(LinkModelSpec::ideal().decorator_prefix(), "");
  EXPECT_EQ(LinkModelSpec::ideal().fingerprint(), "ideal");

  LinkModelSpec spec;
  spec.wifi = true;
  spec.tcp = true;
  spec.loss_pct = 2.0;
  // Canonical order regardless of how the flags were set.
  EXPECT_EQ(spec.decorator_prefix(), "tcp-lv08:lossy:p=2%:wifi:");
  spec.cksum_pct = 1.5;
  EXPECT_EQ(spec.decorator_prefix(), "tcp-lv08:lossy:p=2%:c=1.5%:wifi:");
  EXPECT_EQ(spec.fingerprint(), spec.decorator_prefix());

  BackgroundSpec background;
  EXPECT_EQ(background.decorator_prefix(), "");
  background.flows = 8;
  EXPECT_EQ(background.decorator_prefix(), "bg:8:");
}

TEST(WeightedFairShare, AllUnitWeightsMatchTheUnweightedSolver) {
  // The weighted solver with every weight at 1.0 must reproduce the
  // historical solver exactly — same divisions, same subtractions — on
  // seeded random problems.
  Rng rng(0x11e1903);
  for (int round = 0; round < 200; ++round) {
    const std::size_t resources = 1 + rng.next_below(6);
    const std::size_t flow_count = 1 + rng.next_below(8);
    FairShareProblem plain;
    WeightedFairShareProblem weighted;
    for (std::size_t r = 0; r < resources; ++r) {
      const double capacity = static_cast<double>(1 + rng.next_below(1000));
      plain.capacities.push_back(capacity);
      weighted.capacities.push_back(capacity);
    }
    for (std::size_t f = 0; f < flow_count; ++f) {
      std::vector<std::uint32_t> uses;
      const std::size_t use_count = rng.next_below(resources + 1);
      for (std::size_t u = 0; u < use_count; ++u) {
        const auto r = static_cast<std::uint32_t>(rng.next_below(resources));
        bool duplicate = false;
        for (const std::uint32_t seen : uses) duplicate = duplicate || seen == r;
        if (!duplicate) uses.push_back(r);
      }
      std::vector<WeightedUse> weighted_uses;
      for (const std::uint32_t r : uses) weighted_uses.push_back({r, 1.0});
      plain.flows.push_back(std::move(uses));
      weighted.flows.push_back(std::move(weighted_uses));
    }
    const std::vector<double> a = solve_max_min(plain);
    const std::vector<double> b = solve_max_min_weighted(weighted);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t f = 0; f < a.size(); ++f) {
      if (std::isinf(a[f])) {
        EXPECT_TRUE(std::isinf(b[f]));
      } else {
        EXPECT_DOUBLE_EQ(a[f], b[f]) << "round " << round << " flow " << f;
      }
    }
  }
}

TEST(WeightedFairShare, LightFlowsConsumeProportionallyToWeight) {
  // r0 (cap 10): flow A at weight 1, flow B at weight 0.05.
  // r1 (cap 1): flow B at weight 1 — B bottlenecks there at rate 1,
  // consuming only 0.05 of r0, so A gets the remaining 9.95.
  WeightedFairShareProblem problem;
  problem.capacities = {10.0, 1.0};
  problem.flows.push_back({{0, 1.0}});
  problem.flows.push_back({{0, 0.05}, {1, 1.0}});
  const std::vector<double> rates = solve_max_min_weighted(problem);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[1], 1.0);
  EXPECT_DOUBLE_EQ(rates[0], 10.0 - 0.05 * 1.0);

  // Equal-rate allocation when both contend on one resource: rates are
  // EQUAL (weighted max-min equalizes rates, not consumption).
  WeightedFairShareProblem shared;
  shared.capacities = {10.0};
  shared.flows.push_back({{0, 1.0}});
  shared.flows.push_back({{0, 0.05}});
  const std::vector<double> both = solve_max_min_weighted(shared);
  EXPECT_DOUBLE_EQ(both[0], 10.0 / 1.05);
  EXPECT_DOUBLE_EQ(both[0], both[1]);
}

TEST(WeightedFairShare, DrainedResourceDustCannotStallTheSolver) {
  // Freezing flows A (weight 1) and B (weight 0.05) drains r0 exactly,
  // but the incremental bookkeeping leaves floating-point dust in r0's
  // weight sum (1.05 - 1.0 - 0.05 ~ 4e-17) and residual. A dust share
  // residual/dust undercuts every live share, so a solver that still
  // treats r0 as constraining picks a bottleneck no remaining flow
  // crosses — flow C never freezes and progressive filling spins
  // forever. Liveness must come from the integer user count.
  WeightedFairShareProblem problem;
  problem.capacities = {9.7e6, 9.7e7};
  problem.flows.push_back({{0, 1.0}, {1, 1.0}});   // A: bottlenecked on r0
  problem.flows.push_back({{0, 0.05}});            // B: ack-style cross traffic
  problem.flows.push_back({{1, 1.0}});             // C: r1 only, freezes last
  const std::vector<double> rates = solve_max_min_weighted(problem);
  ASSERT_EQ(rates.size(), 3u);
  const double r0_share = 9.7e6 / 1.05;
  EXPECT_DOUBLE_EQ(rates[0], r0_share);
  EXPECT_DOUBLE_EQ(rates[1], r0_share);
  // C takes what A left on r1 — finite and positive, never dust-capped.
  EXPECT_NEAR(rates[2], 9.7e7 - r0_share, 1.0);
  EXPECT_GT(rates[2], 0.0);
}

/// predicted_rates on a star-switch platform under `model`, for the
/// host-index pairs given.
std::vector<double> star_rates(const LinkModelSpec& model,
                               const std::vector<std::pair<int, int>>& host_pairs,
                               int hosts = 4, double mbps = 1000.0) {
  Scenario scenario = star_switch(hosts, units::mbps(mbps));
  scenario.topology.set_link_model(model);
  Network net(std::move(scenario.topology));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& [a, b] : host_pairs) {
    pairs.emplace_back(net.topology().hosts()[a], net.topology().hosts()[b]);
  }
  auto rates = net.predicted_rates(pairs);
  EXPECT_TRUE(rates.ok());
  return rates.ok() ? rates.value() : std::vector<double>{};
}

TEST(LinkModelNetwork, LossyScalesGoodputAndGroundTruth) {
  LinkModelSpec lossy;
  lossy.loss_pct = 2.0;
  const auto rates = star_rates(lossy, {{0, 1}});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], units::mbps(1000.0) * 0.98);

  Scenario scenario = star_switch(4, units::mbps(1000.0));
  scenario.topology.set_link_model(lossy);
  Network net(std::move(scenario.topology));
  auto truth =
      net.ground_truth_bandwidth(net.topology().hosts()[0], net.topology().hosts()[1]);
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(truth.value(), units::mbps(1000.0) * 0.98);
}

TEST(LinkModelNetwork, WifiMakesDisjointPairsShareTheMedium) {
  // Ideal switch: h0->h1 and h2->h3 do not share anything.
  const auto ideal = star_rates(LinkModelSpec::ideal(), {{0, 1}, {2, 3}});
  ASSERT_EQ(ideal.size(), 2u);
  EXPECT_DOUBLE_EQ(ideal[0], units::mbps(1000.0));
  EXPECT_DOUBLE_EQ(ideal[1], units::mbps(1000.0));

  // Wifi: the switch is an access point — ONE medium, so the same two
  // transfers halve each other.
  LinkModelSpec wifi;
  wifi.wifi = true;
  const auto shared = star_rates(wifi, {{0, 1}, {2, 3}});
  ASSERT_EQ(shared.size(), 2u);
  EXPECT_DOUBLE_EQ(shared[0], units::mbps(500.0));
  EXPECT_DOUBLE_EQ(shared[1], units::mbps(500.0));
}

TEST(LinkModelNetwork, TcpLv08PredictsUsableFractionAndAckContention) {
  LinkModelSpec tcp;
  tcp.tcp = true;
  // Solo transfer: 97% of nominal.
  const auto solo = star_rates(tcp, {{0, 1}});
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_DOUBLE_EQ(solo[0], units::mbps(1000.0) * 0.97);

  // Opposed transfers h0->h1 and h1->h0: each forward path carries the
  // other's 0.05-weight ack stream, so the equal-rate share of each
  // link is 0.97 / 1.05 of nominal — contention the ideal model can't
  // see (it would grant both full rate).
  const auto opposed = star_rates(tcp, {{0, 1}, {1, 0}});
  ASSERT_EQ(opposed.size(), 2u);
  EXPECT_DOUBLE_EQ(opposed[0], units::mbps(1000.0) * 0.97 / 1.05);
  EXPECT_DOUBLE_EQ(opposed[0], opposed[1]);
  const auto opposed_ideal = star_rates(LinkModelSpec::ideal(), {{0, 1}, {1, 0}});
  EXPECT_DOUBLE_EQ(opposed_ideal[0], units::mbps(1000.0));
}

TEST(LinkModelNetwork, IdealTopologyCapacitiesAreBitIdentical) {
  // The spec-level guarantee behind the golden traces: attaching the
  // ideal model changes NOTHING about the fluid problem.
  Scenario plain = star_switch(4, units::mbps(1000.0));
  Scenario decorated = star_switch(4, units::mbps(1000.0));
  decorated.topology.set_link_model(LinkModelSpec::ideal());
  Network a(std::move(plain.topology));
  Network b(std::move(decorated.topology));
  EXPECT_EQ(a.resource_capacities(), b.resource_capacities());
}

}  // namespace
}  // namespace envnws::simnet
