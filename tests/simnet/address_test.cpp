#include "simnet/address.hpp"

#include <gtest/gtest.h>

namespace envnws::simnet {
namespace {

TEST(Ipv4, ParseAndToString) {
  const auto ip = Ipv4::parse("140.77.13.229");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip.value().to_string(), "140.77.13.229");
}

TEST(Ipv4, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4::parse("").ok());
  EXPECT_FALSE(Ipv4::parse("1.2.3").ok());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").ok());
  EXPECT_FALSE(Ipv4::parse("256.1.1.1").ok());
  EXPECT_FALSE(Ipv4::parse("a.b.c.d").ok());
  EXPECT_FALSE(Ipv4::parse("1..2.3").ok());
}

TEST(Ipv4, ComponentConstructor) {
  const Ipv4 ip(192, 168, 81, 50);
  EXPECT_EQ(ip.to_string(), "192.168.81.50");
}

TEST(Ipv4, AddressClasses) {
  EXPECT_EQ(Ipv4(10, 0, 0, 1).address_class(), 'A');
  EXPECT_EQ(Ipv4(140, 77, 13, 1).address_class(), 'B');
  EXPECT_EQ(Ipv4(192, 168, 254, 1).address_class(), 'C');
  EXPECT_EQ(Ipv4(224, 0, 0, 1).address_class(), 'D');
  EXPECT_EQ(Ipv4(250, 0, 0, 1).address_class(), 'E');
}

TEST(Ipv4, PrivateRanges) {
  EXPECT_TRUE(Ipv4(10, 1, 2, 3).is_private());
  EXPECT_TRUE(Ipv4(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4(192, 168, 81, 50).is_private());
  EXPECT_FALSE(Ipv4(140, 77, 13, 229).is_private());
}

TEST(Ipv4, ClassfulNetworkGrouping) {
  // Class B -> /16.
  EXPECT_TRUE(Ipv4(140, 77, 13, 229).same_classful_network(Ipv4(140, 77, 200, 1)));
  EXPECT_FALSE(Ipv4(140, 77, 13, 229).same_classful_network(Ipv4(140, 78, 13, 229)));
  // Class C -> /24.
  EXPECT_TRUE(Ipv4(192, 168, 81, 50).same_classful_network(Ipv4(192, 168, 81, 61)));
  EXPECT_FALSE(Ipv4(192, 168, 81, 50).same_classful_network(Ipv4(192, 168, 82, 50)));
  // Class A -> /8.
  EXPECT_EQ(Ipv4(10, 1, 2, 3).classful_network().to_string(), "10.0.0.0");
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2));
  EXPECT_EQ(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 1));
  EXPECT_NE(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2));
}

}  // namespace
}  // namespace envnws::simnet
