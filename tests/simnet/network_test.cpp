#include "simnet/network.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "common/units.hpp"
#include "simnet/scenario.hpp"

namespace envnws::simnet {
namespace {

using units::mbps;

Topology two_hosts_direct(double bw, double latency) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  topo.connect(a, b, bw, latency);
  return topo;
}

TEST(Network, SingleFlowDurationIsExact) {
  Network net(two_hosts_direct(mbps(100), 1e-3));
  const NodeId a = net.topology().find_by_name("a").value();
  const NodeId b = net.topology().find_by_name("b").value();
  std::optional<FlowResult> result;
  ASSERT_TRUE(net.start_flow(a, b, 1'000'000, [&result](const FlowResult& r) { result = r; }).ok());
  net.run();
  ASSERT_TRUE(result.has_value());
  // fwd latency + transfer + ack latency = 1ms + 80ms + 1ms.
  EXPECT_NEAR(result->duration(), 0.082, 1e-9);
  EXPECT_EQ(result->bytes, 1'000'000);
}

TEST(Network, UnackedFlowOmitsReturnLatency) {
  Network net(two_hosts_direct(mbps(100), 1e-3));
  const NodeId a = net.topology().find_by_name("a").value();
  const NodeId b = net.topology().find_by_name("b").value();
  std::optional<FlowResult> result;
  FlowOptions options;
  options.ack = false;
  ASSERT_TRUE(
      net.start_flow(a, b, 1'000'000, [&result](const FlowResult& r) { result = r; }, options)
          .ok());
  net.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->duration(), 0.081, 1e-9);
}

TEST(Network, ConcurrentFlowsOnSharedLinkHalve) {
  Network net(two_hosts_direct(mbps(100), 0.0));
  const NodeId a = net.topology().find_by_name("a").value();
  const NodeId b = net.topology().find_by_name("b").value();
  int done = 0;
  double duration = 0.0;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(net.start_flow(a, b, 1'000'000, [&done, &duration](const FlowResult& r) {
                     ++done;
                     duration = r.duration();
                   }).ok());
  }
  net.run();
  EXPECT_EQ(done, 2);
  // Two equal flows on one 100 Mbps direction: 160 ms each.
  EXPECT_NEAR(duration, 0.16, 1e-9);
}

TEST(Network, LateJoinerSharesRemainingCapacity) {
  Network net(two_hosts_direct(mbps(100), 0.0));
  const NodeId a = net.topology().find_by_name("a").value();
  const NodeId b = net.topology().find_by_name("b").value();
  double first_duration = 0.0;
  double second_duration = 0.0;
  ASSERT_TRUE(net.start_flow(a, b, 1'000'000,
                             [&first_duration](const FlowResult& r) {
                               first_duration = r.duration();
                             })
                  .ok());
  net.schedule_after(0.040, [&] {
    ASSERT_TRUE(net.start_flow(a, b, 1'000'000,
                               [&second_duration](const FlowResult& r) {
                                 second_duration = r.duration();
                               })
                    .ok());
  });
  net.run();
  // First: 40ms alone (4Mb done) + shares 50/50 until its remaining 4Mb
  // drains at 50 Mbps = 80ms more -> 120 ms total.
  EXPECT_NEAR(first_duration, 0.120, 1e-6);
  // Second: 80ms shared (4Mb) + 40ms alone (4Mb at 100) = 120 ms.
  EXPECT_NEAR(second_duration, 0.120, 1e-6);
}

TEST(Network, OppositeDirectionsIndependentOnFullDuplex) {
  Network net(two_hosts_direct(mbps(100), 0.0));
  const NodeId a = net.topology().find_by_name("a").value();
  const NodeId b = net.topology().find_by_name("b").value();
  double d1 = 0.0;
  double d2 = 0.0;
  ASSERT_TRUE(net.start_flow(a, b, 1'000'000, [&d1](const FlowResult& r) { d1 = r.duration(); }).ok());
  ASSERT_TRUE(net.start_flow(b, a, 1'000'000, [&d2](const FlowResult& r) { d2 = r.duration(); }).ok());
  net.run();
  EXPECT_NEAR(d1, 0.080, 1e-9);
  EXPECT_NEAR(d2, 0.080, 1e-9);
}

TEST(Network, HubIsOneCollisionDomain) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  const NodeId c = topo.add_host("c", "c.lan", Ipv4(10, 0, 0, 3));
  const NodeId d = topo.add_host("d", "d.lan", Ipv4(10, 0, 0, 4));
  const NodeId hub = topo.add_hub("hub", mbps(100));
  for (const NodeId h : {a, b, c, d}) topo.connect(h, hub, mbps(100), 0.0);
  Network net(std::move(topo));
  double d1 = 0.0;
  double d2 = 0.0;
  ASSERT_TRUE(net.start_flow(a, b, 1'000'000, [&d1](const FlowResult& r) { d1 = r.duration(); }).ok());
  ASSERT_TRUE(net.start_flow(c, d, 1'000'000, [&d2](const FlowResult& r) { d2 = r.duration(); }).ok());
  net.run();
  // Disjoint endpoints but ONE shared medium: both flows halve.
  EXPECT_NEAR(d1, 0.16, 1e-9);
  EXPECT_NEAR(d2, 0.16, 1e-9);
}

TEST(Network, SwitchPortsAreIndependent) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  const NodeId c = topo.add_host("c", "c.lan", Ipv4(10, 0, 0, 3));
  const NodeId d = topo.add_host("d", "d.lan", Ipv4(10, 0, 0, 4));
  const NodeId sw = topo.add_switch("sw");
  for (const NodeId h : {a, b, c, d}) topo.connect(h, sw, mbps(100), 0.0);
  Network net(std::move(topo));
  double d1 = 0.0;
  double d2 = 0.0;
  ASSERT_TRUE(net.start_flow(a, b, 1'000'000, [&d1](const FlowResult& r) { d1 = r.duration(); }).ok());
  ASSERT_TRUE(net.start_flow(c, d, 1'000'000, [&d2](const FlowResult& r) { d2 = r.duration(); }).ok());
  net.run();
  EXPECT_NEAR(d1, 0.08, 1e-9);
  EXPECT_NEAR(d2, 0.08, 1e-9);
}

TEST(Network, FirewallBlocksDisjointZones) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  topo.set_zones(a, {"left"});
  topo.set_zones(b, {"right"});
  topo.connect(a, b, mbps(100), 0.0);
  Network net(std::move(topo));
  const auto flow = net.start_flow(NodeId(0), NodeId(1), 1000, nullptr);
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.error().code, ErrorCode::blocked_by_firewall);
}

TEST(Network, GatewaySharesBothZones) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId gw = topo.add_host("gw", "gw.lan", Ipv4(10, 0, 0, 3));
  topo.set_zones(a, {"left"});
  topo.set_zones(gw, {"left", "right"});
  topo.connect(a, gw, mbps(100), 0.0);
  Network net(std::move(topo));
  EXPECT_TRUE(net.can_communicate(NodeId(0), NodeId(1)));
}

TEST(Network, DeadHostRefusesFlows) {
  Network net(two_hosts_direct(mbps(100), 0.0));
  net.set_host_up(NodeId(1), false);
  const auto flow = net.start_flow(NodeId(0), NodeId(1), 1000, nullptr);
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.error().code, ErrorCode::host_down);
  net.set_host_up(NodeId(1), true);
  EXPECT_TRUE(net.start_flow(NodeId(0), NodeId(1), 1000, nullptr).ok());
}

TEST(Network, MessageDelayIncludesTransmission) {
  Network net(two_hosts_direct(mbps(10), 5e-3));
  const auto delay = net.message_delay(NodeId(0), NodeId(1), 1250);  // 1 kbit... 1250B = 10kbit
  ASSERT_TRUE(delay.ok());
  EXPECT_NEAR(delay.value(), 5e-3 + 1e-3, 1e-12);
}

TEST(Network, MessageToDeadHostIsDroppedInFlight) {
  Network net(two_hosts_direct(mbps(100), 10e-3));
  bool delivered = false;
  ASSERT_TRUE(net.send_message(NodeId(0), NodeId(1), 4, [&delivered] { delivered = true; }).ok());
  net.schedule_after(1e-3, [&net] { net.set_host_up(NodeId(1), false); });
  net.run();
  EXPECT_FALSE(delivered);
}

TEST(Network, StatsTrackPurposes) {
  Network net(two_hosts_direct(mbps(100), 0.0));
  net.start_flow(NodeId(0), NodeId(1), 1000, nullptr, FlowOptions{true, "env-probe"});
  net.start_flow(NodeId(0), NodeId(1), 500, nullptr, FlowOptions{true, "env-probe"});
  net.send_message(NodeId(0), NodeId(1), 64, nullptr, "control");
  net.run();
  const NetStats& stats = net.stats();
  EXPECT_EQ(stats.flows_started, 2u);
  EXPECT_EQ(stats.flows_completed, 2u);
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_EQ(stats.by_purpose.at("env-probe").bytes, 1500);
  EXPECT_EQ(stats.by_purpose.at("control").bytes, 64);
  EXPECT_EQ(stats.total_bytes(), 1564);
}

TEST(Network, GroundTruthMatchesTopology) {
  auto scenario = ens_lyon();
  Network net(std::move(scenario.topology));
  const NodeId doors = net.topology().find_by_name("the-doors").value();
  const NodeId popc = net.topology().find_by_name("popc").value();
  const NodeId canaria = net.topology().find_by_name("canaria").value();
  // Asymmetric: towards popc the 10 Mbps link, back the gigabit route.
  EXPECT_DOUBLE_EQ(net.ground_truth_bandwidth(doors, popc).value(), mbps(10));
  EXPECT_DOUBLE_EQ(net.ground_truth_bandwidth(popc, doors).value(), mbps(100));
  EXPECT_DOUBLE_EQ(net.ground_truth_bandwidth(doors, canaria).value(), mbps(100));
  EXPECT_GT(net.ground_truth_latency(doors, popc).value(), 0.0);
}

TEST(Network, TracerouteReportsRouterPolicies) {
  auto scenario = ens_lyon();
  Network net(std::move(scenario.topology));
  const NodeId popc = net.topology().find_by_name("popc").value();
  const NodeId edge = net.topology().find_by_name("edge").value();
  const auto hops = net.traceroute(popc, edge);
  ASSERT_TRUE(hops.ok());
  // popc -> routlhpc -> giga(silent) -> backbone -> edge.
  ASSERT_EQ(hops.value().size(), 4u);
  EXPECT_EQ(hops.value()[0].reported_name, "routlhpc.ens-lyon.fr");
  EXPECT_FALSE(hops.value()[1].responded);
  EXPECT_EQ(hops.value()[1].reported_ip, "*");
  EXPECT_EQ(hops.value()[2].reported_name, "routeur-backbone.ens-lyon.fr");
  // The edge router has no hostname: name resolution fails.
  EXPECT_EQ(hops.value()[3].reported_name, "");
  EXPECT_EQ(hops.value()[3].reported_ip, "192.168.254.1");
}

TEST(Network, TracerouteReportsZoneLocalGatewayIdentity) {
  auto scenario = ens_lyon();
  Network net(std::move(scenario.topology));
  const NodeId myri1 = net.topology().find_by_name("myri1").value();
  const NodeId popc = net.topology().find_by_name("popc").value();
  const auto hops = net.traceroute(myri1, popc);
  ASSERT_TRUE(hops.ok());
  // myri1 -> (hub3) -> myri gateway -> (hub2) -> popc; from the private
  // zone both gateways show their private identities.
  ASSERT_EQ(hops.value().size(), 2u);
  EXPECT_EQ(hops.value()[0].reported_name, "myri0.popc.private");
  EXPECT_EQ(hops.value()[0].reported_ip, "192.168.81.50");
  EXPECT_EQ(hops.value()[1].reported_name, "popc0.popc.private");
}

TEST(Network, TracerouteFromPublicSideShowsPublicIdentity) {
  auto scenario = ens_lyon();
  Network net(std::move(scenario.topology));
  const NodeId doors = net.topology().find_by_name("the-doors").value();
  const NodeId myri = net.topology().find_by_name("myri").value();
  const auto hops = net.traceroute(doors, myri);
  ASSERT_TRUE(hops.ok());
  EXPECT_EQ(hops.value().back().reported_name, "myri.ens-lyon.fr");
}

TEST(Network, JitterDisabledByDefaultDeterministicWhenOn) {
  NetworkOptions options;
  options.measurement_jitter_sigma = 0.05;
  options.seed = 7;
  Network net1(two_hosts_direct(mbps(100), 0.0), options);
  Network net2(two_hosts_direct(mbps(100), 0.0), options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(net1.measurement_jitter(), net2.measurement_jitter());
  }
  Network plain(two_hosts_direct(mbps(100), 0.0));
  EXPECT_DOUBLE_EQ(plain.measurement_jitter(), 1.0);
}

TEST(Network, HostStateSensorsReadLoadModels) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  topo.set_cpu_load(a, LoadModel{1.0, 0.0, 100.0, 0.0, 0.0, 10.0, 1});
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  topo.connect(a, b, mbps(10), 0.0);
  Network net(std::move(topo));
  EXPECT_DOUBLE_EQ(net.cpu_load(NodeId(0), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(net.cpu_availability(NodeId(0), 0.0), 0.5);
  EXPECT_GT(net.memory_free_mb(NodeId(0), 0.0), 0.0);
  EXPECT_GT(net.disk_free_mb(NodeId(0), 0.0), 0.0);
}

TEST(Network, RunUntilAdvancesClockWithoutEvents) {
  Network net(two_hosts_direct(mbps(100), 0.0));
  net.run_until(12.5);
  EXPECT_DOUBLE_EQ(net.now(), 12.5);
}

}  // namespace
}  // namespace envnws::simnet
