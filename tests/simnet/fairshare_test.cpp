#include "simnet/fairshare.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace envnws::simnet {
namespace {

TEST(FairShare, SingleFlowGetsFullCapacity) {
  FairShareProblem problem{{100.0}, {{0}}};
  const auto rates = solve_max_min(problem);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(FairShare, TwoFlowsShareEqually) {
  FairShareProblem problem{{100.0}, {{0}, {0}}};
  const auto rates = solve_max_min(problem);
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(FairShare, BottleneckCapsButLeavesResidualToOthers) {
  // Flow 0 crosses a 10-capacity uplink and a shared 100 medium;
  // flow 1 uses the medium only: classic "10 Mbps bottleneck through a
  // 100 Mbps hub" situation.
  FairShareProblem problem{{10.0, 100.0}, {{0, 1}, {1}}};
  const auto rates = solve_max_min(problem);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 90.0);
}

TEST(FairShare, DisjointFlowsDoNotInteract) {
  FairShareProblem problem{{33.0, 33.0}, {{0}, {1}}};
  const auto rates = solve_max_min(problem);
  EXPECT_DOUBLE_EQ(rates[0], 33.0);
  EXPECT_DOUBLE_EQ(rates[1], 33.0);
}

TEST(FairShare, FlowWithoutResourcesIsUnbounded) {
  FairShareProblem problem{{10.0}, {{}, {0}}};
  const auto rates = solve_max_min(problem);
  EXPECT_TRUE(std::isinf(rates[0]));
  EXPECT_DOUBLE_EQ(rates[1], 10.0);
}

TEST(FairShare, ThreeLevelProgressiveFilling) {
  // r0 = 30 shared by flows {0,1,2}; r1 = 50 shared by {1,2}; r2 = 40 by {2}.
  // Progressive filling: all get 10 at r0 -> no further constraint binds
  // below the next bottleneck... all three stop at 10.
  FairShareProblem problem{{30.0, 50.0, 40.0}, {{0}, {0, 1}, {0, 1, 2}}};
  const auto rates = solve_max_min(problem);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 10.0);
  EXPECT_DOUBLE_EQ(rates[2], 10.0);
}

TEST(FairShare, UnevenBottlenecks) {
  // Flow 0: narrow private link (5); flow 1 shares the big pipe (100).
  FairShareProblem problem{{5.0, 100.0}, {{0, 1}, {1}}};
  const auto rates = solve_max_min(problem);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 95.0);
}

TEST(FairShare, EmptyProblem) {
  FairShareProblem problem{{}, {}};
  EXPECT_TRUE(solve_max_min(problem).empty());
}

// --- property-based: random problems satisfy max-min optimality ----------

class FairShareProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairShareProperty, CapacityRespectedAndEveryFlowHasSaturatedBottleneck) {
  Rng rng(GetParam());
  const std::size_t resources = 2 + rng.next_below(6);
  const std::size_t flows = 1 + rng.next_below(10);
  FairShareProblem problem;
  for (std::size_t r = 0; r < resources; ++r) {
    problem.capacities.push_back(rng.uniform(5.0, 200.0));
  }
  for (std::size_t f = 0; f < flows; ++f) {
    std::vector<std::uint32_t> used;
    for (std::uint32_t r = 0; r < resources; ++r) {
      if (rng.next_double() < 0.5) used.push_back(r);
    }
    if (used.empty()) used.push_back(static_cast<std::uint32_t>(rng.next_below(resources)));
    problem.flows.push_back(used);
  }

  const auto rates = solve_max_min(problem);
  ASSERT_EQ(rates.size(), flows);

  // (1) No resource is over-subscribed.
  std::vector<double> load(resources, 0.0);
  for (std::size_t f = 0; f < flows; ++f) {
    EXPECT_GT(rates[f], 0.0);
    for (const auto r : problem.flows[f]) load[r] += rates[f];
  }
  for (std::size_t r = 0; r < resources; ++r) {
    EXPECT_LE(load[r], problem.capacities[r] * (1.0 + 1e-9));
  }

  // (2) Max-min: every flow crosses at least one saturated resource where
  // it is among the largest allocations (otherwise its rate could grow).
  for (std::size_t f = 0; f < flows; ++f) {
    bool has_bottleneck = false;
    for (const auto r : problem.flows[f]) {
      const bool saturated = load[r] >= problem.capacities[r] * (1.0 - 1e-9);
      if (!saturated) continue;
      bool is_max = true;
      for (std::size_t g = 0; g < flows; ++g) {
        if (g == f) continue;
        const bool crosses =
            std::find(problem.flows[g].begin(), problem.flows[g].end(), r) !=
            problem.flows[g].end();
        if (crosses && rates[g] > rates[f] * (1.0 + 1e-9)) {
          is_max = false;
          break;
        }
      }
      if (is_max) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << f << " has no saturated bottleneck";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, FairShareProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace envnws::simnet
