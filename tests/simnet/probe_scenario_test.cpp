#include <gtest/gtest.h>

#include "common/units.hpp"
#include "simnet/probe.hpp"
#include "simnet/render.hpp"
#include "simnet/scenario.hpp"

namespace envnws::simnet {
namespace {

using units::mbps;

TEST(Probe, SingleMeasuresBandwidth) {
  auto scenario = star_switch(3, mbps(100));
  Network net(std::move(scenario.topology));
  ProbeSession session(net);
  const auto outcome = session.single(net.topology().find_by_name("h0").value(),
                                      net.topology().find_by_name("h1").value(),
                                      units::mib(1));
  ASSERT_TRUE(outcome.ok);
  EXPECT_NEAR(outcome.bandwidth_bps, mbps(100), mbps(1));
  EXPECT_EQ(session.experiment_count(), 1u);
  EXPECT_EQ(session.bytes_sent(), units::mib(1));
  EXPECT_GT(session.busy_time_s(), 0.0);
}

TEST(Probe, ConcurrentSeesContentionOnHub) {
  auto scenario = star_hub(4, mbps(100));
  Network net(std::move(scenario.topology));
  ProbeSession session(net);
  const NodeId h0 = net.topology().find_by_name("h0").value();
  const NodeId h1 = net.topology().find_by_name("h1").value();
  const NodeId h2 = net.topology().find_by_name("h2").value();
  const NodeId h3 = net.topology().find_by_name("h3").value();
  const auto outcomes = session.concurrent(
      {TransferSpec{h0, h1, units::mib(1)}, TransferSpec{h2, h3, units::mib(1)}});
  ASSERT_TRUE(outcomes[0].ok);
  ASSERT_TRUE(outcomes[1].ok);
  EXPECT_NEAR(outcomes[0].bandwidth_bps, mbps(50), mbps(1));
  EXPECT_NEAR(outcomes[1].bandwidth_bps, mbps(50), mbps(1));
  EXPECT_EQ(session.experiment_count(), 1u);  // one concurrent experiment
}

TEST(Probe, ConcurrentIndependentOnSwitch) {
  auto scenario = star_switch(4, mbps(100));
  Network net(std::move(scenario.topology));
  ProbeSession session(net);
  const auto outcomes = session.concurrent(
      {TransferSpec{net.topology().find_by_name("h0").value(),
                    net.topology().find_by_name("h1").value(), units::mib(1)},
       TransferSpec{net.topology().find_by_name("h2").value(),
                    net.topology().find_by_name("h3").value(), units::mib(1)}});
  EXPECT_NEAR(outcomes[0].bandwidth_bps, mbps(100), mbps(1));
  EXPECT_NEAR(outcomes[1].bandwidth_bps, mbps(100), mbps(1));
}

TEST(Probe, BlockedTransferReportsError) {
  auto scenario = ens_lyon();
  Network net(std::move(scenario.topology));
  ProbeSession session(net);
  const auto outcome = session.single(net.topology().find_by_name("the-doors").value(),
                                      net.topology().find_by_name("sci3").value(), 1000);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, ErrorCode::blocked_by_firewall);
}

TEST(Probe, RttIsTwiceOneWayLatency) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  topo.connect(a, b, mbps(100), 5e-3);
  Network net(std::move(topo));
  ProbeSession session(net);
  const auto rtt = session.rtt(a, b);
  ASSERT_TRUE(rtt.ok());
  EXPECT_NEAR(rtt.value(), 10e-3, 1e-5);
  const auto connect = session.connect_time(a, b);
  ASSERT_TRUE(connect.ok());
  EXPECT_NEAR(connect.value(), 15e-3, 1e-4);
}

TEST(Probe, StabilizationGapSeparatesExperiments) {
  auto scenario = star_switch(2, mbps(100));
  Network net(std::move(scenario.topology));
  ProbeSession session(net, ProbeOptions{"probe", 30.0});
  const NodeId h0 = net.topology().find_by_name("h0").value();
  const NodeId h1 = net.topology().find_by_name("h1").value();
  session.single(h0, h1, 1000);
  const double after_first = net.now();
  EXPECT_GE(after_first, 30.0);
  session.single(h0, h1, 1000);
  EXPECT_GE(net.now(), after_first + 30.0);
}

// --- scenarios -----------------------------------------------------------

TEST(Scenario, AllBuildersValidate) {
  EXPECT_TRUE(ens_lyon().topology.validate().ok());
  EXPECT_TRUE(star_hub(5, mbps(10)).topology.validate().ok());
  EXPECT_TRUE(star_switch(5, mbps(100)).topology.validate().ok());
  EXPECT_TRUE(dumbbell(3, 3, mbps(100), mbps(10)).topology.validate().ok());
  EXPECT_TRUE(two_cluster_transversal(3, mbps(100), mbps(100)).topology.validate().ok());
  EXPECT_TRUE(vlan_lab(3, 2, mbps(100)).topology.validate().ok());
  EXPECT_TRUE(wan_constellation(3, 4, mbps(100), mbps(10)).topology.validate().ok());
  EXPECT_TRUE(random_lan(7).topology.validate().ok());
}

TEST(Scenario, EnsLyonGroundTruthHolds) {
  auto scenario = ens_lyon();
  Network net(std::move(scenario.topology));
  const auto id = [&net](const std::string& name) {
    return net.topology().find_by_name(name).value();
  };
  // sci cluster: ~33 Mbps switched ports.
  EXPECT_DOUBLE_EQ(net.ground_truth_bandwidth(id("sci1"), id("sci2")).value(), mbps(33));
  // private hosts unreachable from the public side.
  EXPECT_FALSE(net.can_communicate(id("the-doors"), id("sci1")));
  EXPECT_TRUE(net.can_communicate(id("popc"), id("sci1")));
  EXPECT_TRUE(net.can_communicate(id("the-doors"), id("popc")));
  // the asymmetric bottleneck.
  EXPECT_DOUBLE_EQ(net.ground_truth_bandwidth(id("the-doors"), id("myri")).value(), mbps(10));
  EXPECT_DOUBLE_EQ(net.ground_truth_bandwidth(id("myri"), id("the-doors")).value(), mbps(100));
}

TEST(Scenario, RandomLanIsDeterministicPerSeed) {
  const auto a = random_lan(123);
  const auto b = random_lan(123);
  EXPECT_EQ(a.topology.node_count(), b.topology.node_count());
  EXPECT_EQ(a.topology.link_count(), b.topology.link_count());
  ASSERT_EQ(a.ground_truth.size(), b.ground_truth.size());
  for (std::size_t i = 0; i < a.ground_truth.size(); ++i) {
    EXPECT_EQ(a.ground_truth[i].kind, b.ground_truth[i].kind);
    EXPECT_EQ(a.ground_truth[i].member_names, b.ground_truth[i].member_names);
  }
}

TEST(Scenario, TransversalLinkCarriesInterClusterTraffic) {
  auto scenario = two_cluster_transversal(2, mbps(100), mbps(50));
  Network net(std::move(scenario.topology));
  const NodeId a0 = net.topology().find_by_name("a0").value();
  const NodeId b0 = net.topology().find_by_name("b0").value();
  // Route a0 -> b0 takes the transversal link C (cheap weight), which
  // caps at 50; the master-side path would give 100.
  EXPECT_DOUBLE_EQ(net.ground_truth_bandwidth(a0, b0).value(), mbps(50));
}

TEST(Scenario, RenderersProduceOutput) {
  auto scenario = ens_lyon();
  const std::string physical = render_physical(scenario.topology);
  EXPECT_NE(physical.find("the-doors"), std::string::npos);
  EXPECT_NE(physical.find("hub2"), std::string::npos);
  const std::string links = render_link_table(scenario.topology);
  EXPECT_NE(links.find("slow-10mbps"), std::string::npos);
}

// --- parameterized: hub/switch families at several sizes -----------------

class StarFamily : public ::testing::TestWithParam<int> {};

TEST_P(StarFamily, HubShareScalesInverselyWithFlows) {
  const int n = GetParam();
  auto scenario = star_hub(2 * n, mbps(100));
  Network net(std::move(scenario.topology));
  ProbeSession session(net);
  std::vector<TransferSpec> specs;
  for (int i = 0; i < n; ++i) {
    specs.push_back(TransferSpec{net.topology().find_by_name("h" + std::to_string(2 * i)).value(),
                                 net.topology().find_by_name("h" + std::to_string(2 * i + 1)).value(),
                                 units::mib(1)});
  }
  const auto outcomes = session.concurrent(specs);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok);
    EXPECT_NEAR(outcome.bandwidth_bps, mbps(100) / n, mbps(100) / n * 0.02);
  }
}

TEST_P(StarFamily, SwitchFlowsStayAtLineRate) {
  const int n = GetParam();
  auto scenario = star_switch(2 * n, mbps(100));
  Network net(std::move(scenario.topology));
  ProbeSession session(net);
  std::vector<TransferSpec> specs;
  for (int i = 0; i < n; ++i) {
    specs.push_back(TransferSpec{net.topology().find_by_name("h" + std::to_string(2 * i)).value(),
                                 net.topology().find_by_name("h" + std::to_string(2 * i + 1)).value(),
                                 units::mib(1)});
  }
  const auto outcomes = session.concurrent(specs);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok);
    EXPECT_NEAR(outcome.bandwidth_bps, mbps(100), mbps(2));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StarFamily, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace envnws::simnet
