#include "simnet/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace envnws::simnet {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&order] { order.push_back(3); });
  queue.schedule_at(1.0, [&order] { order.push_back(1); });
  queue.schedule_at(2.0, [&order] { order.push_back(2); });
  SimTime t = 0;
  EventFn fn;
  while (queue.pop(t, fn)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  SimTime t = 0;
  EventFn fn;
  while (queue.pop(t, fn)) fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  const EventHandle handle = queue.schedule_at(1.0, [&fired] { fired = true; });
  queue.cancel(handle);
  SimTime t = 0;
  EventFn fn;
  EXPECT_FALSE(queue.pop(t, fn));
  EXPECT_FALSE(fired);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelIsIdempotentAndSelective) {
  EventQueue queue;
  int fired = 0;
  const EventHandle a = queue.schedule_at(1.0, [&fired] { ++fired; });
  queue.schedule_at(2.0, [&fired] { ++fired; });
  queue.cancel(a);
  queue.cancel(a);  // double cancel is a no-op
  SimTime t = 0;
  EventFn fn;
  while (queue.pop(t, fn)) fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue queue;
  const EventHandle early = queue.schedule_at(1.0, [] {});
  queue.schedule_at(2.0, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 1.0);
  queue.cancel(early);
  // The heap may still surface the cancelled entry until popped; pop
  // must skip it.
  SimTime t = 0;
  EventFn fn;
  ASSERT_TRUE(queue.pop(t, fn));
  EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue queue;
  const EventHandle a = queue.schedule_at(1.0, [] {});
  queue.schedule_at(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1u);
}

}  // namespace
}  // namespace envnws::simnet
