#include "simnet/background.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "simnet/probe.hpp"
#include "simnet/scenario.hpp"

namespace envnws::simnet {
namespace {

using units::mbps;

TEST(CrossTraffic, GeneratesTaggedBursts) {
  auto scenario = star_switch(3, mbps(100));
  Network net(std::move(scenario.topology));
  CrossTrafficSpec spec;
  spec.src = net.topology().find_by_name("h0").value();
  spec.dst = net.topology().find_by_name("h1").value();
  spec.period_s = 5.0;
  spec.spread = 0.0;  // strictly periodic
  CrossTraffic traffic(net, spec);
  traffic.start();
  net.run_until(100.0);
  traffic.stop();
  EXPECT_NEAR(static_cast<double>(traffic.bursts_sent()), 20.0, 2.0);
  EXPECT_GT(net.stats().by_purpose.at("background").bytes, 0);
}

TEST(CrossTraffic, StopCeasesActivity) {
  auto scenario = star_switch(2, mbps(100));
  Network net(std::move(scenario.topology));
  CrossTrafficSpec spec;
  spec.src = net.topology().find_by_name("h0").value();
  spec.dst = net.topology().find_by_name("h1").value();
  spec.period_s = 2.0;
  CrossTraffic traffic(net, spec);
  traffic.start();
  net.run_until(20.0);
  const std::uint64_t before = traffic.bursts_sent();
  traffic.stop();
  net.run_until(100.0);
  EXPECT_EQ(traffic.bursts_sent(), before);
}

TEST(CrossTraffic, ContendsWithProbes) {
  // On a shared hub, a probe overlapping a background burst reads less
  // than the full medium.
  auto scenario = star_hub(4, mbps(10));
  Network net(std::move(scenario.topology));
  CrossTrafficSpec spec;
  spec.src = net.topology().find_by_name("h2").value();
  spec.dst = net.topology().find_by_name("h3").value();
  spec.burst_bytes = units::mib(8);  // ~6.7 s per burst at 10 Mbps
  spec.period_s = 1.0;               // effectively always on
  spec.spread = 0.0;
  CrossTraffic traffic(net, spec);
  traffic.start();
  net.run_until(5.0);
  ProbeSession session(net);
  const auto outcome = session.single(net.topology().find_by_name("h0").value(),
                                      net.topology().find_by_name("h1").value(),
                                      units::mib(1));
  traffic.stop();
  ASSERT_TRUE(outcome.ok);
  EXPECT_LT(outcome.bandwidth_bps, mbps(6.5));
}

TEST(CrossTraffic, DeterministicPerSeed) {
  const auto run = [] {
    auto scenario = star_switch(4, mbps(100));
    Network net(std::move(scenario.topology));
    CrossTrafficSpec spec;
    spec.src = net.topology().find_by_name("h0").value();
    spec.dst = net.topology().find_by_name("h1").value();
    spec.period_s = 3.0;
    spec.spread = 0.8;
    spec.seed = 77;
    CrossTraffic traffic(net, spec);
    traffic.start();
    net.run_until(300.0);
    return traffic.bursts_sent();
  };
  EXPECT_EQ(run(), run());
}

TEST(CrossTraffic, BackgroundLoadFactory) {
  auto scenario = star_switch(5, mbps(100));
  Network net(std::move(scenario.topology));
  auto generators = make_background_load(net, net.topology().hosts(), 0.5, 9);
  ASSERT_EQ(generators.size(), 5u);
  for (auto& generator : generators) generator->start();
  net.run_until(60.0);
  std::uint64_t total = 0;
  for (auto& generator : generators) total += generator->bursts_sent();
  EXPECT_GT(total, 20u);
  // Zero intensity or too few hosts -> no generators.
  EXPECT_TRUE(make_background_load(net, net.topology().hosts(), 0.0, 1).empty());
  EXPECT_TRUE(make_background_load(net, {net.topology().hosts().front()}, 1.0, 1).empty());
}

}  // namespace
}  // namespace envnws::simnet
