#include <gtest/gtest.h>

#include "common/units.hpp"
#include "simnet/routing.hpp"
#include "simnet/topology.hpp"

namespace envnws::simnet {
namespace {

using units::mbps;

TEST(Topology, BuildersAssignKindsAndNames) {
  Topology topo;
  const NodeId host = topo.add_host("h", "h.lan", Ipv4(10, 0, 0, 1));
  const NodeId hub = topo.add_hub("hub", mbps(100));
  const NodeId sw = topo.add_switch("sw");
  const NodeId router = topo.add_router("r", "r.lan", Ipv4(10, 0, 0, 254));
  EXPECT_EQ(topo.node(host).kind, NodeKind::host);
  EXPECT_EQ(topo.node(hub).kind, NodeKind::hub);
  EXPECT_EQ(topo.node(sw).kind, NodeKind::switch_);
  EXPECT_EQ(topo.node(router).kind, NodeKind::router);
  EXPECT_EQ(topo.node_count(), 4u);
  EXPECT_TRUE(topo.find_by_name("hub").ok());
  EXPECT_FALSE(topo.find_by_name("nope").ok());
}

TEST(Topology, HubLinksAreHalfDuplex) {
  Topology topo;
  const NodeId host = topo.add_host("h", "h.lan", Ipv4(10, 0, 0, 1));
  const NodeId hub = topo.add_hub("hub", mbps(10));
  const NodeId sw = topo.add_switch("sw");
  const LinkId to_hub = topo.connect(host, hub, mbps(10), 1e-6);
  const LinkId to_switch = topo.connect(host, sw, mbps(100), 1e-6);
  EXPECT_TRUE(topo.link(to_hub).half_duplex);
  EXPECT_FALSE(topo.link(to_switch).half_duplex);
}

TEST(Topology, FqdnAndAliasLookup) {
  Topology topo;
  const NodeId gw = topo.add_host("popc", "popc.ens-lyon.fr", Ipv4(140, 77, 12, 51));
  topo.add_alias(gw, HostAlias{"popc0.popc.private", Ipv4(192, 168, 81, 51), "popc.private"});
  EXPECT_EQ(topo.find_host_by_fqdn("popc.ens-lyon.fr").value(), gw);
  EXPECT_EQ(topo.find_host_by_fqdn("popc0.popc.private").value(), gw);
  EXPECT_FALSE(topo.find_host_by_fqdn("other").ok());
  // Alias registration adds the zone.
  EXPECT_EQ(topo.node(gw).zones.count("popc.private"), 1u);
}

TEST(Topology, ZoneQueries) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  const NodeId gw = topo.add_host("gw", "gw.lan", Ipv4(10, 0, 0, 3));
  topo.set_zones(a, {"left"});
  topo.set_zones(b, {"right"});
  topo.set_zones(gw, {"left", "right"});
  EXPECT_EQ(topo.hosts_in_zone("left").size(), 2u);
  EXPECT_EQ(topo.hosts_in_zone("right").size(), 2u);
  const auto zones = topo.zones();
  EXPECT_EQ(zones.size(), 2u);
  const auto gateways = topo.gateways_between("left", "right");
  ASSERT_EQ(gateways.size(), 1u);
  EXPECT_EQ(gateways[0], gw);
}

TEST(Topology, ValidateCatchesProblems) {
  {
    Topology topo;
    const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
    const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
    topo.connect_directional(a, b, 0.0, mbps(1), 1e-6);
    EXPECT_FALSE(topo.validate().ok());
  }
  {
    Topology topo;
    topo.add_hub("hub", 0.0);
    EXPECT_FALSE(topo.validate().ok());
  }
  {
    Topology topo;
    const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
    const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
    topo.connect(a, b, mbps(1), -1.0);
    EXPECT_FALSE(topo.validate().ok());
  }
  {
    Topology topo;
    const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
    const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
    topo.connect(a, b, mbps(1), 1e-6);
    EXPECT_TRUE(topo.validate().ok());
  }
}

TEST(Routing, ShortestPathByWeight) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId r1 = topo.add_router("r1", "r1.lan", Ipv4(10, 0, 0, 251));
  const NodeId r2 = topo.add_router("r2", "r2.lan", Ipv4(10, 0, 0, 252));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  topo.connect(a, r1, mbps(100), 1e-6);
  topo.connect(r1, r2, mbps(100), 1e-6);
  topo.connect(r2, b, mbps(100), 1e-6);
  // Direct but expensive detour.
  const LinkId direct = topo.connect(a, b, mbps(100), 1e-6);
  topo.set_routing_weight(direct, 10.0, 10.0);

  RouteTable routes(topo);
  const auto path = routes.path(a, b);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value().hops.size(), 3u);  // a-r1-r2-b beats weight-10 direct
}

TEST(Routing, DirectionalWeightsYieldAsymmetricRoutes) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  const NodeId via = topo.add_router("via", "via.lan", Ipv4(10, 0, 0, 250));
  const LinkId slow = topo.connect(a, b, mbps(10), 1e-6, "slow");
  topo.set_routing_weight(slow, 1.0, 100.0);
  const LinkId leg1 = topo.connect(a, via, mbps(1000), 1e-6);
  topo.set_routing_weight(leg1, 50.0, 1.0);
  const LinkId leg2 = topo.connect(via, b, mbps(1000), 1e-6);
  topo.set_routing_weight(leg2, 50.0, 1.0);

  RouteTable routes(topo);
  const auto forward = routes.path(a, b);
  const auto backward = routes.path(b, a);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(forward.value().hops.size(), 1u);   // direct slow link
  EXPECT_EQ(backward.value().hops.size(), 2u);  // via the fast detour
  EXPECT_DOUBLE_EQ(forward.value().bottleneck_bandwidth(topo), mbps(10));
  EXPECT_DOUBLE_EQ(backward.value().bottleneck_bandwidth(topo), mbps(1000));
}

TEST(Routing, OverrideForcesRoute) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  const NodeId via = topo.add_router("via", "via.lan", Ipv4(10, 0, 0, 250));
  topo.connect(a, b, mbps(10), 1e-6);  // would be the shortest path
  const LinkId leg1 = topo.connect(a, via, mbps(100), 1e-6);
  const LinkId leg2 = topo.connect(via, b, mbps(100), 1e-6);

  RouteTable routes(topo);
  ASSERT_TRUE(routes.set_override(a, b, {leg1, leg2}).ok());
  const auto path = routes.path(a, b);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value().hops.size(), 2u);
  // Reverse direction unaffected by the override.
  EXPECT_EQ(routes.path(b, a).value().hops.size(), 1u);
}

TEST(Routing, OverrideValidatesWalk) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  const NodeId c = topo.add_host("c", "c.lan", Ipv4(10, 0, 0, 3));
  topo.connect(a, b, mbps(10), 1e-6);
  const LinkId bc = topo.connect(b, c, mbps(10), 1e-6);
  RouteTable routes(topo);
  EXPECT_FALSE(routes.set_override(a, c, {bc}).ok());       // not connected to a
  EXPECT_FALSE(routes.set_override(a, b, {LinkId(0), bc}).ok());  // ends at c, not b
}

TEST(Routing, UnreachableReportsError) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  (void)b;
  RouteTable routes(topo);
  const auto path = routes.path(a, NodeId(1));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, ErrorCode::unreachable);
  EXPECT_TRUE(routes.path(a, a).ok());  // self route is empty but valid
}

TEST(Routing, PathLatencyAndNodes) {
  Topology topo;
  const NodeId a = topo.add_host("a", "a.lan", Ipv4(10, 0, 0, 1));
  const NodeId r = topo.add_router("r", "r.lan", Ipv4(10, 0, 0, 250));
  const NodeId b = topo.add_host("b", "b.lan", Ipv4(10, 0, 0, 2));
  topo.connect(a, r, mbps(100), 1e-3);
  topo.connect(r, b, mbps(100), 2e-3);
  RouteTable routes(topo);
  const auto path = routes.path(a, b);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path.value().total_latency(topo), 3e-3);
  const auto nodes = path.value().nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes.front(), a);
  EXPECT_EQ(nodes[1], r);
  EXPECT_EQ(nodes.back(), b);
}

TEST(LoadModel, DeterministicAndClamped) {
  LoadModel model{0.5, 0.4, 100.0, 0.0, 0.3, 5.0, 99};
  const double v1 = model.at(42.0);
  const double v2 = model.at(42.0);
  EXPECT_DOUBLE_EQ(v1, v2);
  for (double t = 0.0; t < 500.0; t += 7.3) {
    EXPECT_GE(model.at(t), 0.0);
  }
}

TEST(LoadModel, SinusoidMovesLoad) {
  LoadModel model{1.0, 0.5, 100.0, 0.0, 0.0, 10.0, 1};
  EXPECT_NEAR(model.at(25.0), 1.5, 1e-9);  // sin peak at quarter period
  EXPECT_NEAR(model.at(75.0), 0.5, 1e-9);
}

}  // namespace
}  // namespace envnws::simnet
