// Batched within-zone probe scheduling at the api::Session level: the
// MapResult of every registry family is bit-identical for probe_jobs in
// {1, 2, 8}; the committed golden traces replay batched runs unchanged;
// batch events obey the ordering guarantees; and probe_jobs never
// touches the persistent map-cache key.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>

#include "api/envnws.hpp"
#include "env/env_tree.hpp"

namespace envnws::api {
namespace {

namespace fs = std::filesystem;

const fs::path kTraceDir = fs::path(ENVNWS_TEST_DATA_DIR) / "traces";

simnet::Scenario make_scenario(const std::string& spec) {
  auto made = ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(made.ok()) << spec;
  return std::move(made.value());
}

std::string digest_at(const simnet::Scenario& scenario, int probe_jobs) {
  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  session.options().mapper.probe_jobs = probe_jobs;
  EXPECT_TRUE(session.map().ok()) << scenario.name << " probe_jobs=" << probe_jobs;
  return session.map_result().identity_digest();
}

TEST(BatchedSchedule, EveryRegistryFamilyIsBitIdenticalAcrossProbeJobs) {
  for (const auto* entry : ScenarioRegistry::builtin().entries()) {
    if (entry->name == "file") continue;  // needs a file on disk
    SCOPED_TRACE(entry->name);
    auto scenario = make_scenario(entry->name);
    const std::string sequential = digest_at(scenario, 1);
    EXPECT_EQ(digest_at(scenario, 2), sequential) << entry->name;
    EXPECT_EQ(digest_at(scenario, 8), sequential) << entry->name;
  }
}

TEST(BatchedSchedule, GoldenTracesReplayBatchedRunsUnchanged) {
  // Traces store the canonical experiment order, which batching
  // preserves — so recordings made before the batch schedule existed
  // replay a probe_jobs=8 mapping bit-identically, with zero probes.
  struct Family {
    const char* spec;
    const char* file;
  };
  for (const Family family : {Family{"dumbbell:3x3@100/10", "dumbbell-3x3.envtrace"},
                              Family{"star-switch:6@100", "star-switch-6.envtrace"},
                              Family{"vlan:4x2", "vlan-4x2.envtrace"},
                              Family{"multi-firewall:2x2", "multi-firewall-2x2.envtrace"}}) {
    SCOPED_TRACE(family.spec);
    const fs::path path = kTraceDir / family.file;
    ASSERT_TRUE(fs::exists(path)) << path;
    auto scenario = make_scenario(family.spec);

    simnet::Network live_net(simnet::Scenario(scenario).topology);
    Session live(live_net, scenario);
    live.options().mapper.probe_jobs = 8;
    ASSERT_TRUE(live.map().ok());

    simnet::Network replay_net(simnet::Scenario(scenario).topology);
    Session replay(replay_net, scenario);
    replay.options().mapper.probe_jobs = 8;
    ASSERT_TRUE(replay.set_probe_engine_spec("replay:" + path.string()).ok());
    auto status = replay.map();
    ASSERT_TRUE(status.ok()) << status.error().to_string();
    EXPECT_EQ(live.map_result().identity_digest(), replay.map_result().identity_digest());
    const auto& purposes = replay_net.stats().by_purpose;
    EXPECT_EQ(purposes.find("env-probe"), purposes.end());
  }
}

TEST(BatchedSchedule, BatchEventsNestInsideTheirZoneAndPairUp) {
  auto scenario = make_scenario("multi-firewall:2x3");
  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  session.options().mapper.probe_jobs = 4;
  EventLog log;
  session.set_observer(&log);
  ASSERT_TRUE(session.map().ok());

  std::size_t batch_events = 0;
  std::map<int, bool> zone_open;      // zone_index -> inside started..finished
  std::map<int, bool> batch_open;     // zone_index -> inside a batch pair
  for (const auto& event : log.events()) {
    if (event.kind == Event::Kind::zone_started) zone_open[event.zone_index] = true;
    if (event.kind == Event::Kind::zone_finished || event.kind == Event::Kind::zone_failed) {
      EXPECT_FALSE(batch_open[event.zone_index]);  // no dangling batch
      zone_open[event.zone_index] = false;
    }
    if (event.kind == Event::Kind::probe_batch_started ||
        event.kind == Event::Kind::probe_batch_finished) {
      ++batch_events;
      EXPECT_TRUE(zone_open[event.zone_index]) << "batch outside its zone";
      EXPECT_FALSE(event.zone.empty());
      EXPECT_GE(event.zone_index, 0);
      if (event.kind == Event::Kind::probe_batch_started) {
        EXPECT_FALSE(batch_open[event.zone_index]) << "overlapping batches in one zone";
        batch_open[event.zone_index] = true;
      } else {
        EXPECT_TRUE(batch_open[event.zone_index]) << "finish without start";
        batch_open[event.zone_index] = false;
        EXPECT_NE(event.detail.find("s sequential ->"), std::string::npos) << event.detail;
      }
    }
  }
  EXPECT_GT(batch_events, 0u);

  // A sequential run's event stream carries no batch events at all.
  simnet::Network seq_net(simnet::Scenario(scenario).topology);
  Session sequential(seq_net, scenario);
  EventLog seq_log;
  sequential.set_observer(&seq_log);
  ASSERT_TRUE(sequential.map().ok());
  for (const auto& event : seq_log.events()) {
    EXPECT_NE(event.kind, Event::Kind::probe_batch_started);
    EXPECT_NE(event.kind, Event::Kind::probe_batch_finished);
  }
}

TEST(BatchedSchedule, BatchedDurationStaysPhysicalUnderZoneParallelism) {
  // With map_threads > 1 the merged duration is already a makespan over
  // zones; naively subtracting the summed per-zone savings from it used
  // to go NEGATIVE (more saved than the makespan is long). The estimate
  // must stay clamped to what a schedule can physically achieve.
  auto scenario = make_scenario("multi-firewall:8x8");
  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  session.options().mapper.map_threads = 16;
  session.options().mapper.probe_jobs = 16;
  ASSERT_TRUE(session.map().ok());
  const env::MapResult& result = session.map_result();
  ASSERT_GT(result.batch.saved_s(), 0.0);
  double longest_zone = 0.0;
  for (const auto& zone : result.zones) {
    longest_zone = std::max(longest_zone, zone.batched_duration_s());
  }
  EXPECT_GT(result.batched_duration_s(), 0.0);
  EXPECT_GE(result.batched_duration_s(), longest_zone);  // no schedule beats its longest job
  EXPECT_LE(result.batched_duration_s(), result.stats.duration_s);
}

TEST(BatchedSchedule, ProbeJobsDoesNotTouchTheMapCacheKey) {
  const fs::path dir = fs::path(::testing::TempDir()) / "envnws-batch-cache";
  fs::remove_all(dir);
  auto scenario = make_scenario("star-switch:5@100");

  simnet::Network warm_net(simnet::Scenario(scenario).topology);
  Session warm(warm_net, scenario);
  warm.set_map_cache(dir.string());
  ASSERT_TRUE(warm.map().ok());
  ASSERT_GT(warm.map_result().stats.experiments, 0u);

  // The batched session reloads the sequential session's entry: the
  // mapped view is probe_jobs-independent, so the key must be too.
  simnet::Network batched_net(simnet::Scenario(scenario).topology);
  Session batched(batched_net, scenario);
  batched.options().mapper.probe_jobs = 8;
  batched.set_map_cache(dir.string());
  ASSERT_TRUE(batched.map().ok());
  EXPECT_EQ(batched.map_result().stats.experiments, 0u);  // cache hit
}

}  // namespace
}  // namespace envnws::api
