// The staged pipeline: stage reuse, observer event ordering, probe
// backend pluggability, and equivalence with the core::auto_deploy
// compatibility wrapper.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "api/envnws.hpp"
#include "common/units.hpp"
#include "env/sim_probe_engine.hpp"

namespace envnws::api {
namespace {

using units::mbps;

simnet::Scenario test_scenario() {
  return ScenarioRegistry::builtin().make("dumbbell:3x3@100/10").value();
}

std::uint64_t probe_flows(const simnet::Network& net) {
  const auto it = net.stats().by_purpose.find("env-probe");
  return it == net.stats().by_purpose.end() ? 0 : it->second.flow_count;
}

TEST(Session, PlanFromCachedMapIsIdenticalToAutoDeploy) {
  const auto scenario = test_scenario();

  simnet::Network reference_net(simnet::Scenario(scenario).topology);
  auto reference = core::auto_deploy(reference_net, scenario);
  ASSERT_TRUE(reference.ok()) << reference.error().to_string();

  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  ASSERT_TRUE(session.map().ok());
  ASSERT_TRUE(session.plan().ok());
  EXPECT_EQ(session.config_text(), reference.value().config_text);
  EXPECT_EQ(session.plan_result().render(), reference.value().plan.render());
  reference.value().system->stop();
}

TEST(Session, RePlanningReusesTheCachedMapWithoutReProbing) {
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  ASSERT_TRUE(session.plan().ok());  // auto-runs the map stage first
  EXPECT_TRUE(session.has(Stage::map));
  const std::uint64_t probes_after_map = probe_flows(net);
  ASSERT_GT(probes_after_map, 0u);
  const std::string first_config = session.config_text();

  // Re-plan with host locks: different plan, not a single new probe.
  session.options().planner.use_host_locks = true;
  ASSERT_TRUE(session.plan().ok());
  EXPECT_EQ(probe_flows(net), probes_after_map);
  EXPECT_NE(session.config_text(), first_config);

  // And back: byte-identical to the first plan.
  session.options().planner.use_host_locks = false;
  ASSERT_TRUE(session.plan().ok());
  EXPECT_EQ(probe_flows(net), probes_after_map);
  EXPECT_EQ(session.config_text(), first_config);
}

TEST(Session, LoadedMapIsPlannedWithoutProbing) {
  // First session maps and publishes; second one re-plans from the cache.
  simnet::Network net1(simnet::Scenario(test_scenario()).topology);
  Session first(net1, test_scenario());
  ASSERT_TRUE(first.map().ok());
  ASSERT_TRUE(first.plan().ok());
  const std::string expected_config = first.config_text();
  env::MapResult cached = std::move(first.map_result());

  simnet::Network net2(simnet::Scenario(test_scenario()).topology);
  Session second(net2);  // no scenario: map stage must come from the cache
  second.load_map(std::move(cached));
  ASSERT_TRUE(second.run_all().ok());
  EXPECT_EQ(probe_flows(net2), 0u);
  EXPECT_EQ(second.config_text(), expected_config);
  second.system().stop();
}

TEST(Session, MapFailsWithoutScenarioOrCache) {
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net);
  EventLog log;
  session.set_observer(&log);
  auto status = session.run_all();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::invalid_argument);
  ASSERT_FALSE(log.events().empty());
  EXPECT_EQ(log.events().back().kind, Event::Kind::stage_failed);
  EXPECT_EQ(log.events().back().stage, Stage::map);
}

TEST(Session, FailedMapCallDoesNotDiscardASeededMap) {
  simnet::Network net1(simnet::Scenario(test_scenario()).topology);
  Session first(net1, test_scenario());
  ASSERT_TRUE(first.map().ok());
  env::MapResult cached = std::move(first.map_result());

  simnet::Network net2(simnet::Scenario(test_scenario()).topology);
  Session session(net2);
  session.load_map(std::move(cached));
  // Probing is impossible without a scenario — but the error must not
  // wipe the cache it tells the caller to provide.
  EXPECT_FALSE(session.map().ok());
  EXPECT_TRUE(session.has(Stage::map));
  EXPECT_TRUE(session.plan().ok());
}

TEST(Session, ObserverSeesStagesInPipelineOrder) {
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  EventLog log;
  session.set_observer(&log);
  ASSERT_TRUE(session.run_all().ok());

  std::vector<std::pair<Event::Kind, Stage>> markers;
  for (const auto& event : log.events()) {
    if (event.kind == Event::Kind::stage_started || event.kind == Event::Kind::stage_finished ||
        event.kind == Event::Kind::stage_failed) {
      markers.emplace_back(event.kind, event.stage);
    }
  }
  const std::vector<std::pair<Event::Kind, Stage>> expected{
      {Event::Kind::stage_started, Stage::map},
      {Event::Kind::stage_finished, Stage::map},
      {Event::Kind::stage_started, Stage::plan},
      {Event::Kind::stage_finished, Stage::plan},
      {Event::Kind::stage_started, Stage::apply},
      {Event::Kind::stage_finished, Stage::apply},
      {Event::Kind::stage_started, Stage::validate},
      {Event::Kind::stage_finished, Stage::validate},
  };
  EXPECT_EQ(markers, expected);

  // Event timestamps never go backwards (the map stage advances the
  // simulated clock, later stages are instantaneous).
  for (std::size_t i = 1; i < log.events().size(); ++i) {
    EXPECT_GE(log.events()[i].sim_time_s, log.events()[i - 1].sim_time_s);
  }
  session.system().stop();
}

TEST(Session, ZoneEventsAreSequencedBetweenMapMarkers) {
  const auto scenario =
      ScenarioRegistry::builtin().make("multi-firewall:2x2@100/100").value();
  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  EventLog log;
  session.set_observer(&log);
  ASSERT_TRUE(session.map().ok());

  // Sequence stamps count every delivery, gap-free.
  for (std::size_t i = 0; i < log.events().size(); ++i) {
    EXPECT_EQ(log.events()[i].sequence, i);
  }
  // Zone events sit strictly between the map stage's start/finish
  // markers, one started+finished pair per zone (3 zones: public + 2).
  std::size_t started_at = 0;
  std::size_t finished_at = 0;
  std::map<int, std::vector<Event::Kind>> per_zone;
  for (std::size_t i = 0; i < log.events().size(); ++i) {
    const Event& event = log.events()[i];
    if (event.kind == Event::Kind::stage_started) started_at = i;
    if (event.kind == Event::Kind::stage_finished) finished_at = i;
    if (event.kind == Event::Kind::zone_started || event.kind == Event::Kind::zone_finished) {
      EXPECT_GT(i, started_at);
      EXPECT_EQ(finished_at, 0u);  // no stage_finished yet
      EXPECT_FALSE(event.zone.empty());
      per_zone[event.zone_index].push_back(event.kind);
    }
  }
  ASSERT_EQ(per_zone.size(), 3u);
  for (const auto& [zone_index, kinds] : per_zone) {
    ASSERT_EQ(kinds.size(), 2u) << "zone " << zone_index;
    EXPECT_EQ(kinds[0], Event::Kind::zone_started);
    EXPECT_EQ(kinds[1], Event::Kind::zone_finished);
  }
}

TEST(Session, ParallelMapMatchesSequentialAndSparesTheSessionNetwork) {
  const auto scenario =
      ScenarioRegistry::builtin().make("multi-firewall:3x2@100/100").value();

  simnet::Network seq_net(simnet::Scenario(scenario).topology);
  Session sequential(seq_net, scenario);
  ASSERT_TRUE(sequential.map().ok());
  ASSERT_GT(probe_flows(seq_net), 0u);

  simnet::Network par_net(simnet::Scenario(scenario).topology);
  Session parallel(par_net, scenario);
  parallel.options().mapper.map_threads = 4;
  EventLog log;
  parallel.set_observer(&log);
  ASSERT_TRUE(parallel.map().ok());

  // Identical merged result...
  EXPECT_EQ(parallel.map_result().grid.to_string(), sequential.map_result().grid.to_string());
  EXPECT_EQ(parallel.map_result().warnings, sequential.map_result().warnings);
  EXPECT_EQ(parallel.map_result().master_fqdn, sequential.map_result().master_fqdn);
  // ...but a shorter map stage (makespan over 4 workers vs. the sum)...
  EXPECT_LT(parallel.map_result().stats.duration_s,
            sequential.map_result().stats.duration_s * 0.75);
  // ...and no probe traffic on the session's own network (the zones ran
  // on private replicas).
  EXPECT_EQ(probe_flows(par_net), 0u);

  // Zone events still pair up per zone, sequences still gap-free, even
  // though deliveries came from worker threads.
  for (std::size_t i = 0; i < log.events().size(); ++i) {
    EXPECT_EQ(log.events()[i].sequence, i);
  }
  std::map<int, std::vector<Event::Kind>> per_zone;
  for (const Event& event : log.events()) {
    if (event.kind == Event::Kind::zone_started || event.kind == Event::Kind::zone_finished) {
      per_zone[event.zone_index].push_back(event.kind);
    }
  }
  ASSERT_EQ(per_zone.size(), 4u);  // public + 3 private zones
  for (const auto& [zone_index, kinds] : per_zone) {
    ASSERT_EQ(kinds.size(), 2u) << "zone " << zone_index;
    EXPECT_EQ(kinds[0], Event::Kind::zone_started);
    EXPECT_EQ(kinds[1], Event::Kind::zone_finished);
  }
}

TEST(Session, CustomProbeEngineFactoryIsUsed) {
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  int factory_calls = 0;
  session.set_probe_engine_factory(
      [&factory_calls](simnet::Network& target, const env::MapperOptions& options)
          -> std::unique_ptr<env::ProbeEngine> {
        ++factory_calls;
        return std::make_unique<env::SimProbeEngine>(target, options);
      });
  ASSERT_TRUE(session.map().ok());
  EXPECT_EQ(factory_calls, 1);
  // Re-planning does not touch the probe backend again.
  ASSERT_TRUE(session.plan().ok());
  EXPECT_EQ(factory_calls, 1);
  // Re-mapping builds a fresh engine.
  ASSERT_TRUE(session.map().ok());
  EXPECT_EQ(factory_calls, 2);
}

TEST(Session, InvalidateDropsDownstreamStages) {
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  ASSERT_TRUE(session.run_all().ok());
  EXPECT_TRUE(session.has(Stage::map));
  EXPECT_TRUE(session.has(Stage::validate));

  session.invalidate(Stage::plan);
  EXPECT_TRUE(session.has(Stage::map));
  EXPECT_FALSE(session.has(Stage::plan));
  EXPECT_FALSE(session.has(Stage::apply));
  EXPECT_FALSE(session.has(Stage::validate));

  // The pipeline resumes from the surviving map stage.
  const std::uint64_t probes = probe_flows(net);
  ASSERT_TRUE(session.run_all().ok());
  EXPECT_EQ(probe_flows(net), probes);
  session.system().stop();
}

TEST(Session, GridmlSeededSessionMatchesDeployFromGridml) {
  // Map once and publish the GridML text.
  std::string published;
  {
    simnet::Network net(simnet::Scenario(test_scenario()).topology);
    Session session(net, test_scenario());
    ASSERT_TRUE(session.map().ok());
    published = session.map_result().grid.to_string();
  }

  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net);
  ASSERT_TRUE(session.load_map_from_gridml(published, "l0.lan").ok());
  ASSERT_TRUE(session.run_all().ok());
  EXPECT_EQ(probe_flows(net), 0u);

  simnet::Network reference_net(simnet::Scenario(test_scenario()).topology);
  auto reference = core::deploy_from_gridml(reference_net, published, "l0.lan");
  ASSERT_TRUE(reference.ok()) << reference.error().to_string();
  EXPECT_EQ(session.config_text(), reference.value().config_text);
  EXPECT_EQ(session.plan_result().memory_hosts, reference.value().plan.memory_hosts);
  reference.value().system->stop();
  session.system().stop();

  // Garbage documents fail loudly.
  Session bad(net);
  EXPECT_FALSE(bad.load_map_from_gridml("<GRID />", "l0.lan").ok());
  EXPECT_FALSE(bad.load_map_from_gridml("not xml at all", "x").ok());

  // A malformed bandwidth property is a Result error naming the
  // property, not a std::stod exception killing the process.
  const auto at = published.find("ENV_base_BW\" value=\"");
  ASSERT_NE(at, std::string::npos) << published;
  std::string corrupted = published;
  const auto value_at = at + std::string("ENV_base_BW\" value=\"").size();
  corrupted.replace(value_at, corrupted.find('"', value_at) - value_at, "fast-ish");
  auto status = bad.load_map_from_gridml(corrupted, "l0.lan");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::protocol);
  EXPECT_NE(status.error().message.find("ENV_base_BW"), std::string::npos)
      << status.error().message;
}

TEST(ScenarioId, MissingHostIsNamedErrorNotCrash) {
  const auto scenario = test_scenario();
  auto found = scenario.id("l0");
  ASSERT_TRUE(found.ok());
  auto missing = scenario.id("does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::not_found);
  EXPECT_NE(missing.error().message.find("does-not-exist"), std::string::npos);
  EXPECT_NE(missing.error().message.find(scenario.name), std::string::npos);
}

}  // namespace
}  // namespace envnws::api
