// Registry-driven property test: every builtin scenario family runs the
// full pipeline, the deployment answers every host pair (validation
// completeness), and mapping the zones concurrently produces a MapResult
// identical to the sequential one — grid, effective view, master and
// warnings alike.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "env/env_tree.hpp"

namespace envnws::api {
namespace {

namespace fs = std::filesystem;

/// Maps `scenario` twice — zones sequential vs. concurrent — and checks
/// the merged results match; then plans and validates the parallel one.
void check_scenario(const std::string& spec, const simnet::Scenario& scenario) {
  SCOPED_TRACE("scenario " + spec);

  simnet::Network sequential_net(simnet::Scenario(scenario).topology);
  Session sequential(sequential_net, scenario);
  ASSERT_TRUE(sequential.map().ok()) << spec;

  simnet::Network parallel_net(simnet::Scenario(scenario).topology);
  Session parallel(parallel_net, scenario);
  parallel.options().mapper.map_threads = 4;
  ASSERT_TRUE(parallel.map().ok()) << spec;

  const env::MapResult& a = sequential.map_result();
  const env::MapResult& b = parallel.map_result();
  EXPECT_EQ(a.master_fqdn, b.master_fqdn);
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.grid.to_string(), b.grid.to_string());
  EXPECT_EQ(env::render_effective(a.root), env::render_effective(b.root));
  EXPECT_EQ(a.stats.experiments, b.stats.experiments);
  ASSERT_EQ(a.zones.size(), b.zones.size());
  for (std::size_t z = 0; z < a.zones.size(); ++z) {
    EXPECT_EQ(a.zones[z].spec.zone_name, b.zones[z].spec.zone_name);
    EXPECT_EQ(env::render_effective(a.zones[z].root), env::render_effective(b.zones[z].root));
  }
  // Concurrent zones probe private platform replicas: the session's own
  // network carries no probe traffic at all.
  const auto& purposes = parallel_net.stats().by_purpose;
  EXPECT_EQ(purposes.find("env-probe"), purposes.end()) << spec;

  // Identical views plan identically; the plan answers every host pair.
  ASSERT_TRUE(sequential.plan().ok()) << spec;
  ASSERT_TRUE(parallel.plan().ok()) << spec;
  EXPECT_EQ(sequential.config_text(), parallel.config_text());
  ASSERT_TRUE(parallel.validate().ok()) << spec;
  EXPECT_TRUE(parallel.validation().complete) << spec << "\n" << parallel.validation().render();
}

TEST(RegistryPipeline, EveryBuiltinFamilyMapsPlansAndValidatesCompletely) {
  for (const auto* entry : ScenarioRegistry::builtin().entries()) {
    if (entry->name == "file") continue;  // exercised separately below
    auto scenario = ScenarioRegistry::builtin().make(entry->name);
    ASSERT_TRUE(scenario.ok()) << entry->name << ": " << scenario.error().to_string();
    check_scenario(entry->name, scenario.value());
  }
}

TEST(RegistryPipeline, RandomLanSeedsMapIdenticallyInParallel) {
  for (const int seed : {1, 2, 3}) {
    const std::string spec = "random-lan:" + std::to_string(seed);
    auto scenario = ScenarioRegistry::builtin().make(spec);
    ASSERT_TRUE(scenario.ok()) << spec;
    check_scenario(spec, scenario.value());
  }
}

TEST(RegistryPipeline, MultiZoneFamilyMapsIdenticallyInParallel) {
  auto scenario = ScenarioRegistry::builtin().make("multi-firewall:4x3@100/100");
  ASSERT_TRUE(scenario.ok());
  check_scenario("multi-firewall:4x3@100/100", scenario.value());
}

TEST(RegistryPipeline, FileFamilyRunsThePipelineOnAPublishedView) {
  // Publish a mapped view to disk, then drive the whole pipeline from it.
  const std::string published = [] {
    auto scenario = ScenarioRegistry::builtin().make("dumbbell:3x3@100/10").value();
    simnet::Network net(simnet::Scenario(scenario).topology);
    Session session(net, scenario);
    EXPECT_TRUE(session.map().ok());
    return session.map_result().grid.to_string();
  }();
  const fs::path path = fs::path(::testing::TempDir()) / "envnws-published-view.gridml";
  { std::ofstream(path) << published; }

  const std::string spec = "file:" + path.string();
  auto scenario = ScenarioRegistry::builtin().make(spec);
  ASSERT_TRUE(scenario.ok()) << scenario.error().to_string();
  EXPECT_EQ(scenario.value().name, spec);  // canonical spec stamped
  EXPECT_GE(scenario.value().topology.hosts().size(), 6u);
  check_scenario(spec, scenario.value());

  // Missing and garbage files fail loudly, with the right categories.
  auto missing = ScenarioRegistry::builtin().make("file:/definitely/not/there.gridml");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::not_found);
  const fs::path garbage = fs::path(::testing::TempDir()) / "envnws-garbage.gridml";
  { std::ofstream(garbage) << "this is not xml"; }
  EXPECT_FALSE(ScenarioRegistry::builtin().make("file:" + garbage.string()).ok());
}

}  // namespace
}  // namespace envnws::api
