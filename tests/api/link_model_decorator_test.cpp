// The spec-decorator layer of the scenario grammar
// ([tcp-lv08:][lossy:p=P%:c=C%:][wifi:][bg:N:] prefixes): exact parses,
// canonical round-trips, composition with every registry family, cache
// fingerprint sensitivity — and a seeded fuzz pass asserting malformed
// decorators always come back as Result errors, never exceptions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/envnws.hpp"
#include "common/rng.hpp"

namespace envnws::api {
namespace {

TEST(LinkModelDecorators, ParseExtractsEveryKnob) {
  auto spec = ScenarioSpec::parse("tcp-lv08:lossy:p=3%:c=1.5%:wifi:bg:8:star-switch:6@1000");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec.value().name, "star-switch");
  EXPECT_TRUE(spec.value().link_model.tcp);
  EXPECT_TRUE(spec.value().link_model.wifi);
  EXPECT_DOUBLE_EQ(spec.value().link_model.loss_pct, 3.0);
  EXPECT_DOUBLE_EQ(spec.value().link_model.cksum_pct, 1.5);
  EXPECT_EQ(spec.value().background.flows, 8);
  ASSERT_EQ(spec.value().dims.size(), 1u);
  EXPECT_EQ(spec.value().dims[0], 6);
  ASSERT_EQ(spec.value().rates_mbps.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.value().rates_mbps[0], 1000.0);
  // Canonical text reproduces the decorators, in canonical order.
  EXPECT_EQ(spec.value().to_string(), "tcp-lv08:lossy:p=3%:c=1.5%:wifi:bg:8:star-switch:6@1000");

  // `lossy:` without arguments defaults to p=2%, c=0%.
  auto defaulted = ScenarioSpec::parse("lossy:dumbbell:3x3");
  ASSERT_TRUE(defaulted.ok());
  EXPECT_DOUBLE_EQ(defaulted.value().link_model.loss_pct, 2.0);
  EXPECT_DOUBLE_EQ(defaulted.value().link_model.cksum_pct, 0.0);
  EXPECT_EQ(defaulted.value().to_string(), "lossy:p=2%:dumbbell:3x3");
}

TEST(LinkModelDecorators, DecoratorsCommuteIntoOneCanonicalForm) {
  const char* permutations[] = {
      "tcp-lv08:wifi:lossy:p=5%:star-switch:4",
      "wifi:tcp-lv08:lossy:p=5%:star-switch:4",
      "lossy:p=5%:wifi:tcp-lv08:star-switch:4",
  };
  for (const char* text : permutations) {
    SCOPED_TRACE(text);
    auto spec = ScenarioSpec::parse(text);
    ASSERT_TRUE(spec.ok()) << spec.error().to_string();
    EXPECT_EQ(spec.value().to_string(), "tcp-lv08:lossy:p=5%:wifi:star-switch:4");
  }
}

TEST(LinkModelDecorators, MalformedDecoratorsAreResultErrors) {
  const char* malformed[] = {
      "tcp-lv08:tcp-lv08:star-switch:4",   // duplicate decorator
      "wifi:wifi:star-switch:4",           // duplicate decorator
      "lossy:p=1%:lossy:star-switch:4",    // duplicate decorator
      "lossy:p=1%:p=2%:star-switch:4",     // duplicate argument
      "lossy:p=:star-switch:4",            // empty percent
      "lossy:p=abc%:star-switch:4",        // junk percent
      "lossy:p=12:star-switch:4",          // missing '%'... parsed as arg
      "lossy:p=-3%:star-switch:4",         // negative
      "lossy:p=100%:star-switch:4",        // total loss excluded
      "lossy:p=1e309%:star-switch:4",      // overflowing double
      "lossy:c=150%:star-switch:4",        // corruption out of range
      "bg:star-switch:4",                  // missing flow count
      "bg:0:star-switch:4",                // zero flows
      "bg:-4:star-switch:4",               // negative flows
      "bg:5000:star-switch:4",             // over the 4096 cap
      "bg:99999999999999999999:star-switch:4",  // overflowing integer
      "bg:2.5:star-switch:4",              // non-integer flows
      "tcp-lv08:",                         // decorators but no scenario
  };
  for (const char* text : malformed) {
    SCOPED_TRACE(text);
    auto spec = ScenarioSpec::parse(text);
    if (spec.ok()) {
      // A parse that survives must be a plain scenario whose name merely
      // resembles a decorator ("lossy:p=12:..." falls here: 'p=12' is
      // not a percent token, so 'lossy' keeps its default arguments and
      // 'p=12' must then fail the registry as an unknown family).
      auto made = ScenarioRegistry::builtin().make(spec.value());
      EXPECT_FALSE(made.ok()) << text;
    } else {
      EXPECT_EQ(spec.error().code, ErrorCode::invalid_argument) << text;
    }
  }
}

TEST(LinkModelDecorators, SeededFuzzNeverThrowsAndRoundTripsSurvivors) {
  // Random decorator soup glued onto random tails: every outcome is a
  // clean Result, and whatever parses is a fixpoint of its own
  // canonical form.
  static const char* kPieces[] = {
      "tcp-lv08:", "lossy:", "wifi:",   "bg:",     "p=",      "c=",     "%",
      "%:",        ":",      "2",       "97",      "150",     "-3",     "1e309",
      "0",         "4096",   "star-switch:4", "dumbbell:3x3", "x",      "@100",
      "",          " ",      "lossy",   "bg:8:",   "p=2%:",   "c=1.5%:",
  };
  constexpr std::size_t kPieceCount = sizeof(kPieces) / sizeof(kPieces[0]);
  Rng rng(0xdec02a7edULL);
  int parsed_count = 0;
  for (int round = 0; round < 4000; ++round) {
    std::string text;
    const std::size_t pieces = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < pieces; ++i) text += kPieces[rng.next_below(kPieceCount)];
    SCOPED_TRACE("input '" + text + "'");
    auto spec = ScenarioSpec::parse(text);
    if (!spec.ok()) {
      EXPECT_EQ(spec.error().code, ErrorCode::invalid_argument);
      continue;
    }
    ++parsed_count;
    const std::string canonical = spec.value().to_string();
    auto again = ScenarioSpec::parse(canonical);
    ASSERT_TRUE(again.ok()) << canonical;
    EXPECT_EQ(again.value().to_string(), canonical);
    EXPECT_EQ(again.value().link_model.tcp, spec.value().link_model.tcp);
    EXPECT_EQ(again.value().link_model.wifi, spec.value().link_model.wifi);
    EXPECT_DOUBLE_EQ(again.value().link_model.loss_pct, spec.value().link_model.loss_pct);
    EXPECT_DOUBLE_EQ(again.value().link_model.cksum_pct, spec.value().link_model.cksum_pct);
    EXPECT_EQ(again.value().background.flows, spec.value().background.flows);
    // The registry classifies the survivor without crashing either.
    (void)ScenarioRegistry::builtin().make(spec.value());
  }
  EXPECT_GT(parsed_count, 100);  // the corpus hits plenty of valid specs
}

/// Maps `spec` and returns the result digest; asserts success.
std::string map_digest(const std::string& spec) {
  auto scenario = ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(scenario.ok()) << spec << ": " << scenario.error().to_string();
  if (!scenario.ok()) return "";
  simnet::Network net(simnet::Scenario(scenario.value()).topology);
  Session session(net, scenario.value());
  auto status = session.map();
  EXPECT_TRUE(status.ok()) << spec << ": " << status.error().to_string();
  if (!status.ok()) return "";
  return session.map_result().identity_digest();
}

TEST(LinkModelDecorators, EveryFamilyComposesWithLossyAndWifi) {
  // The decorator layer must be orthogonal to the family layer: every
  // builtin family maps under `lossy:` and `wifi:`, and the digest is a
  // pure function of the decorated spec (two independent sessions
  // agree; the decorated platform maps differently from the ideal one
  // whenever any shared segment exists).
  for (const auto* entry : ScenarioRegistry::builtin().entries()) {
    if (entry->name == "file") continue;  // needs a payload file
    for (const std::string decorator : {"lossy:p=4%:", "wifi:"}) {
      const std::string spec = decorator + entry->name;
      SCOPED_TRACE(spec);
      const std::string digest = map_digest(spec);
      ASSERT_FALSE(digest.empty());
      EXPECT_EQ(map_digest(spec), digest);  // pure function of the spec
    }
  }
}

TEST(LinkModelDecorators, BackgroundTrafficKeepsMappingDeterministic) {
  // Cross-traffic perturbs the measurements but not determinism: the
  // generators are seeded from the spec, so replicas replay bit-equal.
  const std::string spec = "bg:6:star-switch:6@1000";
  const std::string digest = map_digest(spec);
  ASSERT_FALSE(digest.empty());
  EXPECT_EQ(map_digest(spec), digest);
}

TEST(LinkModelDecorators, BackgroundTcpMonitoringDrainsToCompletion) {
  // Regression: the lv08 ack streams' 0.05 weights leave floating-point
  // dust on drained resources, and the weighted solver once picked that
  // dust as the bottleneck — no flow could freeze, and the first
  // background burst after the pipeline wedged the event loop forever
  // (quickstart on bg:N:tcp-lv08:dumbbell hung). The full pipeline plus
  // ten simulated minutes of NWS monitoring under background TCP load
  // must drain: every flow completes in bounded virtual time.
  auto scenario = ScenarioRegistry::builtin().make("bg:2:tcp-lv08:dumbbell:3x3");
  ASSERT_TRUE(scenario.ok());
  simnet::Network net(simnet::Scenario(scenario.value()).topology);
  Session session(net, scenario.value());
  ASSERT_TRUE(session.run_all().ok());
  const double deadline = net.now() + 600.0;
  net.run_until(deadline);
  EXPECT_GE(net.now(), deadline);
  const auto& stats = net.stats();
  EXPECT_GT(stats.flows_completed, 0u);
  // On/off background sources + clique probes: at most a handful of
  // flows are ever in flight, none stuck at a dust-zero rate.
  EXPECT_LE(stats.flows_started - stats.flows_completed, 8u);
  session.system().stop();
}

TEST(LinkModelDecorators, PlatformFingerprintChargesEveryKnob) {
  // Satellite contract for the map cache: a cached ideal map must never
  // be served for a decorated spec — every decorator knob lands in the
  // platform fingerprint.
  const char* specs[] = {
      "star-switch:6@1000",
      "tcp-lv08:star-switch:6@1000",
      "lossy:p=2%:star-switch:6@1000",
      "lossy:p=3%:star-switch:6@1000",
      "lossy:p=2%:c=1%:star-switch:6@1000",
      "wifi:star-switch:6@1000",
      "bg:4:star-switch:6@1000",
      "bg:8:star-switch:6@1000",
  };
  std::vector<std::string> fingerprints;
  for (const char* spec : specs) {
    auto scenario = ScenarioRegistry::builtin().make(spec);
    ASSERT_TRUE(scenario.ok()) << spec;
    fingerprints.push_back(MapCache::platform_fingerprint(scenario.value().topology));
    // Stable: the same spec fingerprints identically.
    auto again = ScenarioRegistry::builtin().make(spec);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(MapCache::platform_fingerprint(again.value().topology), fingerprints.back())
        << spec;
  }
  for (std::size_t i = 0; i < fingerprints.size(); ++i) {
    for (std::size_t j = i + 1; j < fingerprints.size(); ++j) {
      EXPECT_NE(fingerprints[i], fingerprints[j]) << specs[i] << " vs " << specs[j];
    }
  }
}

}  // namespace
}  // namespace envnws::api
