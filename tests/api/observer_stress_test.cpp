// Observer delivery under concurrent zone mapping, stressed: with
// map_threads=8 on multi-firewall:4x4 (5 zones), events originate on
// pool workers, yet the Session must deliver them serialized — gap-free
// sequence numbers, zone markers properly nested inside the map stage,
// exactly one started/terminal pair per zone (observer.hpp guarantees
// 1-4). Several iterations shake out interleavings.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "api/envnws.hpp"

namespace envnws::api {
namespace {

TEST(ObserverStress, ConcurrentZoneEventsAreGapFreeAndProperlyNested) {
  auto scenario = ScenarioRegistry::builtin().make("multi-firewall:4x4");
  ASSERT_TRUE(scenario.ok());

  for (int iteration = 0; iteration < 5; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    simnet::Network net(simnet::Scenario(scenario.value()).topology);
    Session session(net, scenario.value());
    session.options().mapper.map_threads = 8;
    EventLog log;
    session.set_observer(&log);
    ASSERT_TRUE(session.map().ok());

    const auto& events = log.events();
    ASSERT_FALSE(events.empty());

    // Guarantee 1: sequence increases by exactly 1 per delivered event.
    for (std::size_t i = 0; i < events.size(); ++i) {
      ASSERT_EQ(events[i].sequence, i) << "sequence gap at event " << i;
    }
    // Guarantee 5: the simulated clock never runs backwards.
    for (std::size_t i = 1; i < events.size(); ++i) {
      ASSERT_GE(events[i].sim_time_s, events[i - 1].sim_time_s) << "clock regressed at " << i;
    }

    // Guarantees 2+3: exactly one map started/finished pair, and every
    // zone event strictly between them.
    std::size_t started_at = events.size();
    std::size_t finished_at = events.size();
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind == Event::Kind::stage_started && events[i].stage == Stage::map) {
        ASSERT_EQ(started_at, events.size()) << "duplicate map stage_started";
        started_at = i;
      }
      if (events[i].kind == Event::Kind::stage_finished && events[i].stage == Stage::map) {
        ASSERT_EQ(finished_at, events.size()) << "duplicate map stage_finished";
        finished_at = i;
      }
    }
    ASSERT_LT(started_at, finished_at);

    // Guarantee 4: per zone, one started before one finished, nothing
    // else; 5 zones total (4 private + the public one).
    std::map<int, std::size_t> zone_started;
    std::map<int, std::size_t> zone_finished;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& event = events[i];
      const bool is_zone_event = event.kind == Event::Kind::zone_started ||
                                 event.kind == Event::Kind::zone_finished ||
                                 event.kind == Event::Kind::zone_failed;
      if (!is_zone_event) {
        ASSERT_EQ(event.zone_index, -1);
        continue;
      }
      ASSERT_GT(i, started_at) << "zone event before map stage_started";
      ASSERT_LT(i, finished_at) << "zone event after map stage_finished";
      ASSERT_GE(event.zone_index, 0);
      ASSERT_FALSE(event.zone.empty());
      if (event.kind == Event::Kind::zone_started) {
        ASSERT_EQ(zone_started.count(event.zone_index), 0u)
            << "zone " << event.zone_index << " started twice";
        zone_started[event.zone_index] = i;
      } else {
        ASSERT_EQ(event.kind, Event::Kind::zone_finished) << "zone " << event.zone_index
                                                          << " failed: " << event.detail;
        ASSERT_EQ(zone_finished.count(event.zone_index), 0u)
            << "zone " << event.zone_index << " finished twice";
        ASSERT_EQ(zone_started.count(event.zone_index), 1u)
            << "zone " << event.zone_index << " finished before starting";
        ASSERT_LT(zone_started[event.zone_index], i);
        zone_finished[event.zone_index] = i;
      }
    }
    EXPECT_EQ(zone_started.size(), 5u);
    EXPECT_EQ(zone_finished.size(), 5u);
  }
}

}  // namespace
}  // namespace envnws::api
