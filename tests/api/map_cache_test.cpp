// The persistent map cache: exact store/load round-trips, the zero-probe
// reload path through Session::map(), key sensitivity to probe options,
// and explicit invalidation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/envnws.hpp"
#include "common/units.hpp"
#include "env/env_tree.hpp"

namespace envnws::api {
namespace {

namespace fs = std::filesystem;

std::string fresh_cache_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("envnws-map-cache-" + tag);
  fs::remove_all(dir);
  return dir.string();
}

simnet::Scenario test_scenario() {
  return ScenarioRegistry::builtin().make("multi-firewall:3x3@100/100").value();
}

/// The key Session::map() uses when no explicit label was given.
std::string default_key(const simnet::Scenario& scenario) {
  return MapCache::key_for(
      scenario.name + "+" + MapCache::platform_fingerprint(scenario.topology),
      env::MapperOptions{});
}

std::uint64_t probe_flows(const simnet::Network& net) {
  const auto it = net.stats().by_purpose.find("env-probe");
  return it == net.stats().by_purpose.end() ? 0 : it->second.flow_count;
}

TEST(MapCache, RoundTripPreservesViewGridAndZones) {
  const std::string dir = fresh_cache_dir("roundtrip");
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  ASSERT_TRUE(session.map().ok());
  const env::MapResult& original = session.map_result();

  MapCache cache(dir);
  const std::string key = MapCache::key_for("multi-firewall:3x3@100/100", env::MapperOptions{});
  ASSERT_TRUE(cache.store(key, original).ok());
  auto reloaded = cache.load(key);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().to_string();

  EXPECT_EQ(reloaded.value().master_fqdn, original.master_fqdn);
  EXPECT_EQ(reloaded.value().warnings, original.warnings);
  EXPECT_EQ(reloaded.value().stats.experiments, original.stats.experiments);
  EXPECT_EQ(reloaded.value().stats.bytes_sent, original.stats.bytes_sent);
  EXPECT_DOUBLE_EQ(reloaded.value().stats.duration_s, original.stats.duration_s);
  EXPECT_EQ(reloaded.value().grid.to_string(), original.grid.to_string());
  // The effective view round-trips at full precision, machine for machine.
  EXPECT_EQ(env::render_effective(reloaded.value().root), env::render_effective(original.root));
  ASSERT_EQ(reloaded.value().zones.size(), original.zones.size());
  for (std::size_t z = 0; z < original.zones.size(); ++z) {
    EXPECT_EQ(reloaded.value().zones[z].spec.zone_name, original.zones[z].spec.zone_name);
    EXPECT_EQ(reloaded.value().zones[z].spec.hostnames, original.zones[z].spec.hostnames);
    EXPECT_EQ(reloaded.value().zones[z].master_fqdn, original.zones[z].master_fqdn);
  }
}

TEST(MapCache, SecondMapOfTheSameSpecPerformsZeroProbes) {
  const std::string dir = fresh_cache_dir("reload");

  // First run probes and persists.
  simnet::Network net1(simnet::Scenario(test_scenario()).topology);
  Session first(net1, test_scenario());
  first.set_map_cache(dir);
  ASSERT_TRUE(first.map().ok());
  ASSERT_GT(first.map_result().stats.experiments, 0u);
  ASSERT_TRUE(first.plan().ok());
  const std::string fresh_config = first.config_text();

  // Second run — new process, same spec — reloads: zero experiments,
  // zero probe traffic, byte-identical plan.
  simnet::Network net2(simnet::Scenario(test_scenario()).topology);
  Session second(net2, test_scenario());
  second.set_map_cache(dir);
  EventLog log;
  second.set_observer(&log);
  ASSERT_TRUE(second.map().ok());
  EXPECT_EQ(second.map_result().stats.experiments, 0u);
  EXPECT_EQ(probe_flows(net2), 0u);
  ASSERT_TRUE(second.plan().ok());
  EXPECT_EQ(second.config_text(), fresh_config);
  bool saw_cache_note = false;
  for (const auto& event : log.events()) {
    if (event.kind == Event::Kind::note &&
        event.detail.find("reloaded from cache") != std::string::npos) {
      saw_cache_note = true;
    }
  }
  EXPECT_TRUE(saw_cache_note);
}

TEST(MapCache, KeyDependsOnProbeOptionsButNotOnThreads) {
  env::MapperOptions base;
  env::MapperOptions threaded = base;
  threaded.map_threads = 8;
  EXPECT_EQ(MapCache::key_for("star:4@100", base), MapCache::key_for("star:4@100", threaded));

  env::MapperOptions different = base;
  different.probe_bytes *= 2;
  EXPECT_NE(MapCache::key_for("star:4@100", base), MapCache::key_for("star:4@100", different));
  EXPECT_NE(MapCache::key_for("star:4@100", base), MapCache::key_for("star:8@100", base));
}

TEST(MapCache, DifferentPlatformsUnderTheSameNameDoNotCollide) {
  // The bare simnet builders stamp one name for every size:
  // multi_firewall(2,2) and (3,5) are both "multi-firewall". The
  // platform fingerprint in the default key must keep them apart.
  const std::string dir = fresh_cache_dir("fingerprint");
  simnet::Scenario small = simnet::multi_firewall(2, 2, units::mbps(100), units::mbps(100));
  simnet::Scenario large = simnet::multi_firewall(3, 5, units::mbps(100), units::mbps(100));
  ASSERT_EQ(small.name, large.name);

  simnet::Network net1(simnet::Scenario(small).topology);
  Session first(net1, small);
  first.set_map_cache(dir);
  ASSERT_TRUE(first.map().ok());

  simnet::Network net2(simnet::Scenario(large).topology);
  Session second(net2, large);
  second.set_map_cache(dir);
  ASSERT_TRUE(second.map().ok());
  // A collision would have reloaded the small platform's view; the miss
  // re-probed and produced exactly what an uncached run of `large` does.
  EXPECT_GT(second.map_result().stats.experiments, 0u);
  simnet::Network reference_net(simnet::Scenario(large).topology);
  Session reference(reference_net, large);
  ASSERT_TRUE(reference.map().ok());
  EXPECT_EQ(second.map_result().grid.to_string(), reference.map_result().grid.to_string());
}

TEST(MapCache, InvalidationForcesReProbing) {
  const std::string dir = fresh_cache_dir("invalidate");
  simnet::Network net1(simnet::Scenario(test_scenario()).topology);
  Session first(net1, test_scenario());
  first.set_map_cache(dir);
  ASSERT_TRUE(first.map().ok());

  simnet::Network net2(simnet::Scenario(test_scenario()).topology);
  Session second(net2, test_scenario());
  second.set_map_cache(dir);
  ASSERT_TRUE(second.invalidate_map_cache().ok());
  ASSERT_TRUE(second.map().ok());
  EXPECT_GT(second.map_result().stats.experiments, 0u);  // really probed
  EXPECT_GT(probe_flows(net2), 0u);
}

TEST(MapCache, CorruptEntryIsIgnoredAndOverwritten) {
  const std::string dir = fresh_cache_dir("corrupt");
  MapCache cache(dir);
  const simnet::Scenario scenario = test_scenario();
  const std::string key = default_key(scenario);
  fs::create_directories(dir);
  { std::ofstream(cache.path_for(key)) << "<DEFINITELY-NOT-AN-ENVMAP />"; }

  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  session.set_map_cache(dir);
  ASSERT_TRUE(session.map().ok());
  EXPECT_GT(session.map_result().stats.experiments, 0u);
  // The bad entry was replaced by a valid one.
  auto reloaded = cache.load(key);
  EXPECT_TRUE(reloaded.ok()) << reloaded.error().to_string();
}

TEST(MapCache, DamagedEntriesAreMissesNeverErrorsOrGarbageMaps) {
  // Whatever is on disk — a torn write, a file from a future format
  // version, binary noise, a structurally gutted document — map() must
  // treat the entry as a miss: re-probe, produce the same result a fresh
  // run would, and leave a repaired entry behind.
  const std::string dir = fresh_cache_dir("damaged");
  const simnet::Scenario scenario = test_scenario();
  MapCache cache(dir);
  const std::string key = default_key(scenario);

  // A valid entry to damage, plus the reference mapping.
  simnet::Network seed_net(simnet::Scenario(scenario).topology);
  Session seed(seed_net, scenario);
  seed.set_map_cache(dir);
  ASSERT_TRUE(seed.map().ok());
  const std::string reference_grid = seed.map_result().grid.to_string();
  std::string valid_entry;
  {
    std::ifstream in(cache.path_for(key));
    std::ostringstream text;
    text << in.rdbuf();
    valid_entry = text.str();
  }
  ASSERT_FALSE(valid_entry.empty());

  const std::string wrong_version = [&] {
    std::string text = valid_entry;
    const auto at = text.find("version=\"1\"");
    EXPECT_NE(at, std::string::npos);
    return text.replace(at, std::string("version=\"1\"").size(), "version=\"999\"");
  }();
  const std::string gutted = [&] {
    // Structurally valid ENVMAP with the effective view chopped out.
    std::string text = valid_entry;
    const auto open = text.find("<ROOT");
    const auto close = text.find("</ROOT>");
    EXPECT_NE(open, std::string::npos);
    EXPECT_NE(close, std::string::npos);
    return text.erase(open, close + std::string("</ROOT>").size() - open);
  }();
  const struct {
    const char* tag;
    std::string contents;
  } damages[] = {
      {"truncated", valid_entry.substr(0, valid_entry.size() / 2)},
      {"wrong-version", wrong_version},
      {"binary-garbage", std::string("\x7f\x45\x4c\x46\x02\x01\x01\0\0\0garbage", 18)},
      {"empty", ""},
      {"gutted", gutted},
  };

  for (const auto& damage : damages) {
    SCOPED_TRACE(damage.tag);
    { std::ofstream(cache.path_for(key), std::ios::trunc) << damage.contents; }
    // The damaged entry is a load miss with a protocol diagnosis — never
    // a crash, never a half-parsed map.
    auto direct = cache.load(key);
    ASSERT_FALSE(direct.ok());
    EXPECT_EQ(direct.error().code, ErrorCode::protocol);

    simnet::Network net(simnet::Scenario(scenario).topology);
    Session session(net, scenario);
    session.set_map_cache(dir);
    EventLog log;
    session.set_observer(&log);
    ASSERT_TRUE(session.map().ok());
    EXPECT_GT(session.map_result().stats.experiments, 0u);  // really re-probed
    EXPECT_EQ(session.map_result().grid.to_string(), reference_grid);
    bool ignored_note = false;
    for (const auto& event : log.events()) {
      ignored_note =
          ignored_note || event.detail.find("map cache entry ignored") != std::string::npos;
    }
    EXPECT_TRUE(ignored_note);
    // The re-probe repaired the entry in place.
    EXPECT_TRUE(cache.load(key).ok());
  }
}

TEST(MapCache, ClearRemovesEveryEntry) {
  const std::string dir = fresh_cache_dir("clear");
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  session.set_map_cache(dir);
  ASSERT_TRUE(session.map().ok());

  MapCache cache(dir);
  auto removed = cache.clear();
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1u);
  EXPECT_FALSE(cache.load(default_key(test_scenario())).ok());
}

}  // namespace
}  // namespace envnws::api
