// The persistent map cache: exact store/load round-trips, the zero-probe
// reload path through Session::map(), key sensitivity to probe options,
// and explicit invalidation.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "api/envnws.hpp"
#include "common/units.hpp"
#include "env/env_tree.hpp"

namespace envnws::api {
namespace {

namespace fs = std::filesystem;

std::string fresh_cache_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("envnws-map-cache-" + tag);
  fs::remove_all(dir);
  return dir.string();
}

simnet::Scenario test_scenario() {
  return ScenarioRegistry::builtin().make("multi-firewall:3x3@100/100").value();
}

/// The key Session::map() uses when no explicit label was given.
std::string default_key(const simnet::Scenario& scenario) {
  return MapCache::key_for(
      scenario.name + "+" + MapCache::platform_fingerprint(scenario.topology),
      env::MapperOptions{});
}

std::uint64_t probe_flows(const simnet::Network& net) {
  const auto it = net.stats().by_purpose.find("env-probe");
  return it == net.stats().by_purpose.end() ? 0 : it->second.flow_count;
}

TEST(MapCache, RoundTripPreservesViewGridAndZones) {
  const std::string dir = fresh_cache_dir("roundtrip");
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  ASSERT_TRUE(session.map().ok());
  const env::MapResult& original = session.map_result();

  MapCache cache(dir);
  const std::string key = MapCache::key_for("multi-firewall:3x3@100/100", env::MapperOptions{});
  ASSERT_TRUE(cache.store(key, original).ok());
  auto reloaded = cache.load(key);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().to_string();

  EXPECT_EQ(reloaded.value().master_fqdn, original.master_fqdn);
  EXPECT_EQ(reloaded.value().warnings, original.warnings);
  EXPECT_EQ(reloaded.value().stats.experiments, original.stats.experiments);
  EXPECT_EQ(reloaded.value().stats.bytes_sent, original.stats.bytes_sent);
  EXPECT_DOUBLE_EQ(reloaded.value().stats.duration_s, original.stats.duration_s);
  EXPECT_EQ(reloaded.value().grid.to_string(), original.grid.to_string());
  // The effective view round-trips at full precision, machine for machine.
  EXPECT_EQ(env::render_effective(reloaded.value().root), env::render_effective(original.root));
  ASSERT_EQ(reloaded.value().zones.size(), original.zones.size());
  for (std::size_t z = 0; z < original.zones.size(); ++z) {
    EXPECT_EQ(reloaded.value().zones[z].spec.zone_name, original.zones[z].spec.zone_name);
    EXPECT_EQ(reloaded.value().zones[z].spec.hostnames, original.zones[z].spec.hostnames);
    EXPECT_EQ(reloaded.value().zones[z].master_fqdn, original.zones[z].master_fqdn);
  }
}

TEST(MapCache, SecondMapOfTheSameSpecPerformsZeroProbes) {
  const std::string dir = fresh_cache_dir("reload");

  // First run probes and persists.
  simnet::Network net1(simnet::Scenario(test_scenario()).topology);
  Session first(net1, test_scenario());
  first.set_map_cache(dir);
  ASSERT_TRUE(first.map().ok());
  ASSERT_GT(first.map_result().stats.experiments, 0u);
  ASSERT_TRUE(first.plan().ok());
  const std::string fresh_config = first.config_text();

  // Second run — new process, same spec — reloads: zero experiments,
  // zero probe traffic, byte-identical plan.
  simnet::Network net2(simnet::Scenario(test_scenario()).topology);
  Session second(net2, test_scenario());
  second.set_map_cache(dir);
  EventLog log;
  second.set_observer(&log);
  ASSERT_TRUE(second.map().ok());
  EXPECT_EQ(second.map_result().stats.experiments, 0u);
  EXPECT_EQ(probe_flows(net2), 0u);
  ASSERT_TRUE(second.plan().ok());
  EXPECT_EQ(second.config_text(), fresh_config);
  bool saw_cache_note = false;
  for (const auto& event : log.events()) {
    if (event.kind == Event::Kind::note &&
        event.detail.find("reloaded from cache") != std::string::npos) {
      saw_cache_note = true;
    }
  }
  EXPECT_TRUE(saw_cache_note);
}

TEST(MapCache, KeyDependsOnProbeOptionsButNotOnThreads) {
  env::MapperOptions base;
  env::MapperOptions threaded = base;
  threaded.map_threads = 8;
  EXPECT_EQ(MapCache::key_for("star:4@100", base), MapCache::key_for("star:4@100", threaded));

  env::MapperOptions different = base;
  different.probe_bytes *= 2;
  EXPECT_NE(MapCache::key_for("star:4@100", base), MapCache::key_for("star:4@100", different));
  EXPECT_NE(MapCache::key_for("star:4@100", base), MapCache::key_for("star:8@100", base));
}

TEST(MapCache, KeyDependsOnEverySamplingKnob) {
  // A cached full-interrogation result must never satisfy a sampled
  // request (or vice versa), and two sampled runs only share an entry
  // when budget, seed AND confidence all agree — each knob changes what
  // the probes would have measured.
  const env::MapperOptions base;

  env::MapperOptions budget = base;
  budget.max_pairwise = 64;
  EXPECT_NE(MapCache::key_for("star:4@100", base), MapCache::key_for("star:4@100", budget));

  env::MapperOptions seed = base;
  seed.sample_seed = 2;
  EXPECT_NE(MapCache::key_for("star:4@100", base), MapCache::key_for("star:4@100", seed));

  env::MapperOptions confidence = base;
  confidence.sample_confidence_ratio = 1.5;
  EXPECT_NE(MapCache::key_for("star:4@100", base),
            MapCache::key_for("star:4@100", confidence));
}

TEST(MapCache, DifferentPlatformsUnderTheSameNameDoNotCollide) {
  // The bare simnet builders stamp one name for every size:
  // multi_firewall(2,2) and (3,5) are both "multi-firewall". The
  // platform fingerprint in the default key must keep them apart.
  const std::string dir = fresh_cache_dir("fingerprint");
  simnet::Scenario small = simnet::multi_firewall(2, 2, units::mbps(100), units::mbps(100));
  simnet::Scenario large = simnet::multi_firewall(3, 5, units::mbps(100), units::mbps(100));
  ASSERT_EQ(small.name, large.name);

  simnet::Network net1(simnet::Scenario(small).topology);
  Session first(net1, small);
  first.set_map_cache(dir);
  ASSERT_TRUE(first.map().ok());

  simnet::Network net2(simnet::Scenario(large).topology);
  Session second(net2, large);
  second.set_map_cache(dir);
  ASSERT_TRUE(second.map().ok());
  // A collision would have reloaded the small platform's view; the miss
  // re-probed and produced exactly what an uncached run of `large` does.
  EXPECT_GT(second.map_result().stats.experiments, 0u);
  simnet::Network reference_net(simnet::Scenario(large).topology);
  Session reference(reference_net, large);
  ASSERT_TRUE(reference.map().ok());
  EXPECT_EQ(second.map_result().grid.to_string(), reference.map_result().grid.to_string());
}

TEST(MapCache, InvalidationForcesReProbing) {
  const std::string dir = fresh_cache_dir("invalidate");
  simnet::Network net1(simnet::Scenario(test_scenario()).topology);
  Session first(net1, test_scenario());
  first.set_map_cache(dir);
  ASSERT_TRUE(first.map().ok());

  simnet::Network net2(simnet::Scenario(test_scenario()).topology);
  Session second(net2, test_scenario());
  second.set_map_cache(dir);
  ASSERT_TRUE(second.invalidate_map_cache().ok());
  ASSERT_TRUE(second.map().ok());
  EXPECT_GT(second.map_result().stats.experiments, 0u);  // really probed
  EXPECT_GT(probe_flows(net2), 0u);
}

TEST(MapCache, CorruptEntryIsIgnoredAndOverwritten) {
  const std::string dir = fresh_cache_dir("corrupt");
  MapCache cache(dir);
  const simnet::Scenario scenario = test_scenario();
  const std::string key = default_key(scenario);
  fs::create_directories(dir);
  { std::ofstream(cache.path_for(key)) << "<DEFINITELY-NOT-AN-ENVMAP />"; }

  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  session.set_map_cache(dir);
  ASSERT_TRUE(session.map().ok());
  EXPECT_GT(session.map_result().stats.experiments, 0u);
  // The bad entry was replaced by a valid one.
  auto reloaded = cache.load(key);
  EXPECT_TRUE(reloaded.ok()) << reloaded.error().to_string();
}

TEST(MapCache, DamagedEntriesAreMissesNeverErrorsOrGarbageMaps) {
  // Whatever is on disk — a torn write, a file from a future format
  // version, binary noise, a structurally gutted document — map() must
  // treat the entry as a miss: re-probe, produce the same result a fresh
  // run would, and leave a repaired entry behind.
  const std::string dir = fresh_cache_dir("damaged");
  const simnet::Scenario scenario = test_scenario();
  MapCache cache(dir);
  const std::string key = default_key(scenario);

  // A valid entry to damage, plus the reference mapping.
  simnet::Network seed_net(simnet::Scenario(scenario).topology);
  Session seed(seed_net, scenario);
  seed.set_map_cache(dir);
  ASSERT_TRUE(seed.map().ok());
  const std::string reference_grid = seed.map_result().grid.to_string();
  std::string valid_entry;
  {
    std::ifstream in(cache.path_for(key));
    std::ostringstream text;
    text << in.rdbuf();
    valid_entry = text.str();
  }
  ASSERT_FALSE(valid_entry.empty());

  const std::string wrong_version = [&] {
    std::string text = valid_entry;
    const auto at = text.find("version=\"1\"");
    EXPECT_NE(at, std::string::npos);
    return text.replace(at, std::string("version=\"1\"").size(), "version=\"999\"");
  }();
  const std::string gutted = [&] {
    // Structurally valid ENVMAP with the effective view chopped out.
    std::string text = valid_entry;
    const auto open = text.find("<ROOT");
    const auto close = text.find("</ROOT>");
    EXPECT_NE(open, std::string::npos);
    EXPECT_NE(close, std::string::npos);
    return text.erase(open, close + std::string("</ROOT>").size() - open);
  }();
  const struct {
    const char* tag;
    std::string contents;
  } damages[] = {
      {"truncated", valid_entry.substr(0, valid_entry.size() / 2)},
      {"wrong-version", wrong_version},
      {"binary-garbage", std::string("\x7f\x45\x4c\x46\x02\x01\x01\0\0\0garbage", 18)},
      {"empty", ""},
      {"gutted", gutted},
  };

  for (const auto& damage : damages) {
    SCOPED_TRACE(damage.tag);
    { std::ofstream(cache.path_for(key), std::ios::trunc) << damage.contents; }
    // The damaged entry is a load miss with a protocol diagnosis — never
    // a crash, never a half-parsed map.
    auto direct = cache.load(key);
    ASSERT_FALSE(direct.ok());
    EXPECT_EQ(direct.error().code, ErrorCode::protocol);

    simnet::Network net(simnet::Scenario(scenario).topology);
    Session session(net, scenario);
    session.set_map_cache(dir);
    EventLog log;
    session.set_observer(&log);
    ASSERT_TRUE(session.map().ok());
    EXPECT_GT(session.map_result().stats.experiments, 0u);  // really re-probed
    EXPECT_EQ(session.map_result().grid.to_string(), reference_grid);
    bool ignored_note = false;
    for (const auto& event : log.events()) {
      ignored_note =
          ignored_note || event.detail.find("map cache entry ignored") != std::string::npos;
    }
    EXPECT_TRUE(ignored_note);
    // The re-probe repaired the entry in place.
    EXPECT_TRUE(cache.load(key).ok());
  }
}

// --- eviction / GC ----------------------------------------------------------

/// Store the same mapped platform under an explicit key.
void store_under(MapCache& cache, const env::MapResult& map, const std::string& label) {
  ASSERT_TRUE(cache.store(MapCache::key_for(label, env::MapperOptions{}), map).ok());
}

void age_entry(const MapCache& cache, const std::string& label, std::chrono::hours age) {
  std::error_code ec;
  fs::last_write_time(cache.path_for(MapCache::key_for(label, env::MapperOptions{})),
                      fs::file_time_type::clock::now() - age, ec);
  ASSERT_FALSE(ec) << ec.message();
}

bool has_entry(const MapCache& cache, const std::string& label) {
  return fs::exists(cache.path_for(MapCache::key_for(label, env::MapperOptions{})));
}

env::MapResult mapped_platform() {
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  EXPECT_TRUE(session.map().ok());
  return session.map_result();
}

TEST(MapCacheGc, SweepEnforcesMaxEntriesLruByMtime) {
  const std::string dir = fresh_cache_dir("gc-entries");
  MapCache cache(dir);
  const env::MapResult map = mapped_platform();
  store_under(cache, map, "a");
  store_under(cache, map, "b");
  store_under(cache, map, "c");
  // Distinct mtimes (filesystem stamps can tie within one store burst).
  age_entry(cache, "a", std::chrono::hours(3));
  age_entry(cache, "b", std::chrono::hours(2));
  age_entry(cache, "c", std::chrono::hours(1));

  // Loading "a" refreshes its mtime: LRU is recency of USE.
  ASSERT_TRUE(cache.load(MapCache::key_for("a", env::MapperOptions{})).ok());

  cache.set_limits(MapCache::Limits{2, 0.0});
  auto removed = cache.sweep();
  ASSERT_TRUE(removed.ok()) << removed.error().to_string();
  EXPECT_EQ(removed.value(), 1u);
  EXPECT_TRUE(has_entry(cache, "a"));   // freshly used
  EXPECT_FALSE(has_entry(cache, "b"));  // oldest unused
  EXPECT_TRUE(has_entry(cache, "c"));
}

TEST(MapCacheGc, SweepDropsEntriesOlderThanMaxAge) {
  const std::string dir = fresh_cache_dir("gc-age");
  MapCache cache(dir);
  const env::MapResult map = mapped_platform();
  store_under(cache, map, "old");
  store_under(cache, map, "fresh");
  age_entry(cache, "old", std::chrono::hours(2));

  cache.set_limits(MapCache::Limits{0, 3600.0});
  auto removed = cache.sweep();
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1u);
  EXPECT_FALSE(has_entry(cache, "old"));
  EXPECT_TRUE(has_entry(cache, "fresh"));
}

TEST(MapCacheGc, SweepDeletesCorruptEntriesAndSparesForeignFiles) {
  const std::string dir = fresh_cache_dir("gc-corrupt");
  MapCache cache(dir);
  const env::MapResult map = mapped_platform();
  store_under(cache, map, "good");
  const fs::path corrupt = fs::path(dir) / "torn.envmap.xml";
  { std::ofstream(corrupt) << "<ENVMAP version=\"1\" truncated"; }
  // A concurrent writer's temp file and an unrelated file are not ours.
  const fs::path in_flight = fs::path(dir) / "x.envmap.xml.tmp.123.0";
  const fs::path foreign = fs::path(dir) / "README.txt";
  { std::ofstream(in_flight) << "partial"; }
  { std::ofstream(foreign) << "hands off"; }

  // Even an unbounded sweep removes corrupt entries — they can never
  // serve a hit, so they are deleted, not skipped.
  auto removed = cache.sweep();
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1u);
  EXPECT_FALSE(fs::exists(corrupt));
  EXPECT_TRUE(has_entry(cache, "good"));
  EXPECT_TRUE(fs::exists(in_flight));
  EXPECT_TRUE(fs::exists(foreign));
}

// The sweep-cost regression (ROADMAP follow-on): warm sweeps memoize
// parse verdicts per (file, size, mtime) and must NOT re-parse entries
// that haven't changed on disk. The probe: corrupt an entry's CONTENT
// while preserving its size and mtime — a re-parsing sweep would notice
// (and delete it), a memoizing sweep must trust the cached verdict and
// spare it. Touching the mtime then invalidates the marker, and the
// next sweep re-parses and removes the file.
TEST(MapCacheGc, WarmSweepSkipsReparsingUnchangedEntries) {
  const std::string dir = fresh_cache_dir("gc-warm");
  MapCache cache(dir);
  const env::MapResult map = mapped_platform();
  store_under(cache, map, "a");
  store_under(cache, map, "b");
  // Cold sweep: parses (and memoizes) both entries.
  auto cold = cache.sweep();
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value(), 0u);

  // Same-size corruption with the original mtime restored: on disk the
  // entry is garbage, but its (size, mtime) identity is unchanged.
  const fs::path entry = cache.path_for(MapCache::key_for("a", env::MapperOptions{}));
  std::error_code ec;
  const auto original_mtime = fs::last_write_time(entry, ec);
  ASSERT_FALSE(ec);
  const auto original_size = fs::file_size(entry, ec);
  ASSERT_FALSE(ec);
  {
    std::ofstream out(entry, std::ios::trunc);
    out << std::string(static_cast<std::size_t>(original_size), 'x');
  }
  fs::last_write_time(entry, original_mtime, ec);
  ASSERT_FALSE(ec);
  ASSERT_EQ(fs::file_size(entry), original_size);

  auto warm = cache.sweep();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value(), 0u);
  EXPECT_TRUE(fs::exists(entry)) << "warm sweep re-parsed an unchanged entry";

  // A changed mtime invalidates the memoized verdict: the corruption is
  // now seen and the entry removed like any other corrupt file.
  fs::last_write_time(entry, fs::file_time_type::clock::now(), ec);
  ASSERT_FALSE(ec);
  auto invalidated = cache.sweep();
  ASSERT_TRUE(invalidated.ok());
  EXPECT_EQ(invalidated.value(), 1u);
  EXPECT_FALSE(fs::exists(entry));
  EXPECT_TRUE(has_entry(cache, "b"));

  // A FRESH MapCache instance has no markers: its first sweep parses
  // everything (the memoization is per-instance, correctness never
  // depends on it).
  {
    const fs::path entry_b = cache.path_for(MapCache::key_for("b", env::MapperOptions{}));
    const auto mtime_b = fs::last_write_time(entry_b, ec);
    const auto size_b = fs::file_size(entry_b, ec);
    {
      std::ofstream out(entry_b, std::ios::trunc);
      out << std::string(static_cast<std::size_t>(size_b), 'y');
    }
    fs::last_write_time(entry_b, mtime_b, ec);
    MapCache fresh(dir);
    auto first = fresh.sweep();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value(), 1u);
    EXPECT_FALSE(fs::exists(entry_b));
  }
}

TEST(MapCacheGc, StoreSweepsAutomaticallyWhenBounded) {
  const std::string dir = fresh_cache_dir("gc-store");
  MapCache cache(dir);
  cache.set_limits(MapCache::Limits{1, 0.0});
  const env::MapResult map = mapped_platform();
  store_under(cache, map, "first");
  age_entry(cache, "first", std::chrono::hours(1));
  store_under(cache, map, "second");  // triggers the sweep
  EXPECT_FALSE(has_entry(cache, "first"));
  EXPECT_TRUE(has_entry(cache, "second"));  // the just-stored entry survives

  // The Session surface: limits are reachable through map_cache().
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  session.set_map_cache(dir);
  ASSERT_NE(session.map_cache(), nullptr);
  session.map_cache()->set_limits(MapCache::Limits{1, 0.0});
  EXPECT_EQ(session.map_cache()->limits().max_entries, 1u);
  ASSERT_TRUE(session.map().ok());  // stores + sweeps: still >= 1 entry, bounded by 1
  std::size_t entries = 0;
  for (const auto& item : fs::directory_iterator(dir)) {
    const std::string name = item.path().filename().string();
    if (name.size() > 11 && name.rfind(".envmap.xml") == name.size() - 11) ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(MapCache, ClearRemovesEveryEntry) {
  const std::string dir = fresh_cache_dir("clear");
  simnet::Network net(simnet::Scenario(test_scenario()).topology);
  Session session(net, test_scenario());
  session.set_map_cache(dir);
  ASSERT_TRUE(session.map().ok());

  MapCache cache(dir);
  auto removed = cache.clear();
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1u);
  EXPECT_FALSE(cache.load(default_key(test_scenario())).ok());
}

}  // namespace
}  // namespace envnws::api
