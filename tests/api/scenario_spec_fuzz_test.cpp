// Property tests of the scenario-spec grammar, driven by the repo's
// seeded common/rng (reproducible bit-for-bit): randomly constructed
// specs round-trip through their canonical string, random well-formed
// strings parse into what they say, and arbitrary garbage — thrown at
// both ScenarioSpec::parse and ScenarioRegistry::make — must come back
// as Result errors, never crash, and never half-apply.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "api/scenario_registry.hpp"
#include "common/rng.hpp"

namespace envnws::api {
namespace {

constexpr std::uint64_t kSeed = 0xE7f5eedULL;  // fixed: failures reproduce

std::string random_name(Rng& rng) {
  static const char* kAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789-";
  const std::size_t len = 1 + rng.next_below(12);
  std::string name;
  for (std::size_t i = 0; i < len; ++i) name.push_back(kAlphabet[rng.next_below(37)]);
  return name;
}

/// A structurally valid spec (dims, integral rates — canonical text is
/// exact for both), possibly naming no real scenario family.
ScenarioSpec random_valid_spec(Rng& rng) {
  ScenarioSpec spec;
  spec.name = random_name(rng);
  const std::size_t dims = rng.next_below(4);
  for (std::size_t i = 0; i < dims; ++i) {
    spec.dims.push_back(static_cast<int>(rng.next_below(2000)) - 500);  // negatives included
  }
  const std::size_t rates = rng.next_below(3);
  for (std::size_t i = 0; i < rates; ++i) {
    spec.rates_mbps.push_back(static_cast<double>(1 + rng.next_below(10000)));
  }
  return spec;
}

TEST(ScenarioSpecFuzz, CanonicalSpecsRoundTripExactly) {
  Rng rng(kSeed);
  for (int i = 0; i < 2000; ++i) {
    const ScenarioSpec spec = random_valid_spec(rng);
    const std::string text = spec.to_string();
    SCOPED_TRACE("spec '" + text + "'");
    auto parsed = ScenarioSpec::parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
    EXPECT_EQ(parsed.value().name, spec.name);
    EXPECT_EQ(parsed.value().dims, spec.dims);
    EXPECT_EQ(parsed.value().rates_mbps, spec.rates_mbps);
    EXPECT_EQ(parsed.value().payload, spec.payload);
    // to_string is canonical: a second round-trip is a fixpoint.
    EXPECT_EQ(parsed.value().to_string(), text);
  }
}

TEST(ScenarioSpecFuzz, GarbageNeverCrashesAndAlwaysReturnsResultErrors) {
  static const char kChars[] = "abcxyzXYZ0123456789:x@/.{}#%- \t";
  Rng rng(kSeed ^ 0xbadc0de);
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  int parse_failures = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t len = rng.next_below(24);
    std::string text;
    for (std::size_t c = 0; c < len; ++c) {
      text.push_back(kChars[rng.next_below(sizeof(kChars) - 1)]);
    }
    SCOPED_TRACE("input '" + text + "'");
    auto spec = ScenarioSpec::parse(text);
    if (!spec.ok()) {
      ++parse_failures;
      EXPECT_EQ(spec.error().code, ErrorCode::invalid_argument);
    } else {
      // Whatever parsed must survive its own canonical form.
      auto again = ScenarioSpec::parse(spec.value().to_string());
      ASSERT_TRUE(again.ok()) << spec.value().to_string();
      EXPECT_EQ(again.value().to_string(), spec.value().to_string());
    }
    // The registry never crashes either: unknown names, absurd
    // dimensions, wrong arity — all Result errors.
    auto made = registry.make(text);
    if (made.ok()) {
      EXPECT_FALSE(made.value().topology.nodes().empty());
    } else {
      EXPECT_TRUE(made.error().code == ErrorCode::invalid_argument ||
                  made.error().code == ErrorCode::not_found)
          << made.error().to_string();
    }
  }
  // The corpus really exercised the failure paths.
  EXPECT_GT(parse_failures, 100);
}

TEST(ScenarioSpecFuzz, RandomDimsAndRatesOnRealFamiliesNeverCrash) {
  Rng rng(kSeed ^ 0x5eedf00d);
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  std::vector<std::string> families;
  for (const auto* entry : registry.entries()) {
    if (entry->name != "file") families.push_back(entry->name);
  }
  int built = 0;
  for (int i = 0; i < 400; ++i) {
    ScenarioSpec spec = random_valid_spec(rng);
    spec.name = families[rng.next_below(families.size())];
    // Clamp dimensions to bench-sized platforms: the point is boundary
    // behavior (zero, negative, over-arity), not thousand-host builds.
    for (int& dim : spec.dims) dim = dim % 24;
    SCOPED_TRACE("spec '" + spec.to_string() + "'");
    auto made = registry.make(spec);
    if (!made.ok()) {
      EXPECT_EQ(made.error().code, ErrorCode::invalid_argument) << made.error().to_string();
      continue;
    }
    ++built;
    // Canonical-name stamping holds for every successful build.
    EXPECT_EQ(made.value().name, spec.to_string());
    EXPECT_FALSE(made.value().topology.nodes().empty());
  }
  EXPECT_GT(built, 20);  // the generator hits plenty of buildable specs
}

TEST(ScenarioSpecFuzz, LargeSpecsEitherBuildOrFailAsResults) {
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();

  // The 10k acceptance platform constructs, every host address unique —
  // the old star builders truncated host indices into one octet, so
  // anything past 254 hosts silently reused addresses.
  auto big = registry.make("star-switch:10000@100");
  ASSERT_TRUE(big.ok()) << big.error().to_string();
  std::set<std::string> ips;
  std::size_t hosts = 0;
  for (const auto& node : big.value().topology.nodes()) {
    if (!node.is_host()) continue;
    ++hosts;
    EXPECT_TRUE(ips.insert(node.ip.to_string()).second)
        << "duplicate host address " << node.ip.to_string();
  }
  EXPECT_EQ(hosts, 10000u);

  // Past the addressing plan: a Result error, not an allocation storm.
  auto too_big = registry.make("star-switch:70000");
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.error().code, ErrorCode::invalid_argument);

  // Oversized or overflowing dimensions (stoi range, dimension
  // products) all surface as Result errors, never UB or a crash.
  for (const char* spec : {"torus:9999999999", "star-switch:99999999999999",
                           "torus:16x16x16", "fat-tree:100", "star:2147483648"}) {
    SCOPED_TRACE(spec);
    auto made = registry.make(spec);
    ASSERT_FALSE(made.ok());
    EXPECT_EQ(made.error().code, ErrorCode::invalid_argument) << made.error().to_string();
  }
}

}  // namespace
}  // namespace envnws::api
