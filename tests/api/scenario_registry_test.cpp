// The named scenario registry: spec parsing round-trips, builtin
// resolution of every registered family, and loud failure on typos.
#include <gtest/gtest.h>

#include "api/scenario_registry.hpp"
#include "common/units.hpp"

namespace envnws::api {
namespace {

using units::mbps;

const ScenarioRegistry& reg() { return ScenarioRegistry::builtin(); }

std::size_t host_count(const simnet::Scenario& scenario) {
  return scenario.topology.hosts().size();
}

TEST(ScenarioSpec, ParsesFullForm) {
  auto spec = ScenarioSpec::parse("dumbbell:3x4@100/10");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec.value().name, "dumbbell");
  EXPECT_EQ(spec.value().dims, (std::vector<int>{3, 4}));
  EXPECT_EQ(spec.value().rates_mbps, (std::vector<double>{100.0, 10.0}));
}

TEST(ScenarioSpec, ParsesNameOnlyAndPartialForms) {
  EXPECT_TRUE(ScenarioSpec::parse("ens-lyon").ok());
  auto dims_only = ScenarioSpec::parse("star:8");
  ASSERT_TRUE(dims_only.ok());
  EXPECT_TRUE(dims_only.value().rates_mbps.empty());
  auto rates_only = ScenarioSpec::parse("star@33");
  ASSERT_TRUE(rates_only.ok());
  EXPECT_TRUE(rates_only.value().dims.empty());
  EXPECT_EQ(rates_only.value().rates_mbps, (std::vector<double>{33.0}));
}

TEST(ScenarioSpec, RoundTripsThroughToString) {
  for (const char* text : {"ens-lyon", "star:8@100", "dumbbell:3x3@100/10",
                           "constellation:4x5@100/10", "vlan:4x2@100", "random-lan:7",
                           "two-cluster:4@100/1.5"}) {
    auto spec = ScenarioSpec::parse(text);
    ASSERT_TRUE(spec.ok()) << text;
    EXPECT_EQ(spec.value().to_string(), text);
    auto again = ScenarioSpec::parse(spec.value().to_string());
    ASSERT_TRUE(again.ok()) << text;
    EXPECT_EQ(again.value().to_string(), spec.value().to_string());
  }
}

TEST(ScenarioSpec, RejectsMalformedSpecs) {
  for (const char* text : {"", "  ", ":3x3", "star:", "star:x", "star:3x", "star@",
                           "star@fast", "star@-10", "star@0", "dumbbell:axb",
                           "dumbbell:3.5"}) {
    auto spec = ScenarioSpec::parse(text);
    EXPECT_FALSE(spec.ok()) << "'" << text << "' should not parse";
    if (!spec.ok()) EXPECT_EQ(spec.error().code, ErrorCode::invalid_argument) << text;
  }
}

TEST(ScenarioRegistry, UnknownNameIsNamedError) {
  auto made = reg().make("dumbell:3x3");  // the classic typo
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.error().code, ErrorCode::not_found);
  EXPECT_NE(made.error().message.find("dumbell"), std::string::npos);
  EXPECT_NE(made.error().message.find("dumbbell"), std::string::npos)
      << "error should list the known names: " << made.error().message;
}

TEST(ScenarioRegistry, ResolvesEnsLyon) {
  auto made = reg().make("ens-lyon");
  ASSERT_TRUE(made.ok()) << made.error().to_string();
  EXPECT_EQ(made.value().name, "ens-lyon");
  EXPECT_EQ(made.value().master, "the-doors");
  EXPECT_EQ(host_count(made.value()), 14u);  // 3 public + 3 gateways + myri1/2 + sci1..6
}

TEST(ScenarioRegistry, ResolvesStarFamilies) {
  auto hub = reg().make("star:8@100");
  ASSERT_TRUE(hub.ok());
  EXPECT_EQ(host_count(hub.value()), 8u);
  ASSERT_EQ(hub.value().ground_truth.size(), 1u);
  EXPECT_EQ(hub.value().ground_truth[0].kind, simnet::GroundTruthNet::Kind::shared);
  EXPECT_DOUBLE_EQ(hub.value().ground_truth[0].local_bw_bps, mbps(100));

  auto sw = reg().make("star-switch:6@33");
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ(host_count(sw.value()), 6u);
  EXPECT_EQ(sw.value().ground_truth[0].kind, simnet::GroundTruthNet::Kind::switched);
  EXPECT_DOUBLE_EQ(sw.value().ground_truth[0].local_bw_bps, mbps(33));
}

TEST(ScenarioRegistry, ResolvesDumbbell) {
  auto made = reg().make("dumbbell:3x3@100/10");
  ASSERT_TRUE(made.ok());
  EXPECT_EQ(host_count(made.value()), 6u);
  // Defaults produce the same platform as the explicit spec.
  auto defaulted = reg().make("dumbbell");
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(host_count(defaulted.value()), host_count(made.value()));
}

TEST(ScenarioRegistry, ResolvesConstellation) {
  auto made = reg().make("constellation:3x4@100/10");
  ASSERT_TRUE(made.ok());
  EXPECT_EQ(host_count(made.value()), 12u);
  EXPECT_EQ(made.value().ground_truth.size(), 3u);
}

TEST(ScenarioRegistry, ResolvesVlanLab) {
  auto made = reg().make("vlan:3x2@100");
  ASSERT_TRUE(made.ok());
  EXPECT_EQ(host_count(made.value()), 6u);
  EXPECT_EQ(made.value().ground_truth.size(), 2u);
}

TEST(ScenarioRegistry, ResolvesTwoClusterAndRandomLan) {
  auto two = reg().make("two-cluster:4@100/50");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(host_count(two.value()), 9u);  // master + 2x4

  auto random = reg().make("random-lan:7");
  ASSERT_TRUE(random.ok());
  EXPECT_GE(host_count(random.value()), 2u);
  EXPECT_FALSE(random.value().ground_truth.empty());
  // Same seed, same platform.
  auto replay = reg().make("random-lan:7");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(host_count(replay.value()), host_count(random.value()));
}

TEST(ScenarioRegistry, ResolvesMultiFirewall) {
  auto made = reg().make("multi-firewall:4x5@100/100");
  ASSERT_TRUE(made.ok()) << made.error().to_string();
  EXPECT_EQ(made.value().name, "multi-firewall:4x5@100/100");
  EXPECT_EQ(host_count(made.value()), 1u + 4u + 4u * 5u);  // master + gateways + hosts
  // One firewall zone per private domain plus the public one.
  EXPECT_EQ(made.value().topology.zones().size(), 5u);
  EXPECT_EQ(made.value().master, "master");
  // Hard caps fail loudly instead of overflowing addresses.
  EXPECT_FALSE(reg().make("multi-firewall:100x3").ok());
  EXPECT_FALSE(reg().make("multi-firewall:2x300").ok());
}

TEST(ScenarioRegistry, ResolvesFatTree) {
  auto made = reg().make("fat-tree:4@100");
  ASSERT_TRUE(made.ok()) << made.error().to_string();
  EXPECT_EQ(host_count(made.value()), 16u);  // k^3/4
  EXPECT_EQ(made.value().ground_truth.size(), 8u);  // k*(k/2) edge segments
  auto defaulted = reg().make("fat-tree");
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(host_count(defaulted.value()), 16u);
  // K must be even and bounded.
  EXPECT_FALSE(reg().make("fat-tree:3").ok());
  EXPECT_FALSE(reg().make("fat-tree:12").ok());
}

TEST(ScenarioRegistry, ResolvesTorus) {
  auto made = reg().make("torus:3x2x2@100");
  ASSERT_TRUE(made.ok()) << made.error().to_string();
  EXPECT_EQ(host_count(made.value()), 12u);
  auto bare = reg().make("torus");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(host_count(bare.value()), 8u);  // 2x2x2
  auto ring = reg().make("torus:6");
  ASSERT_TRUE(ring.ok());
  EXPECT_EQ(host_count(ring.value()), 6u);  // trailing dims default to 1
  EXPECT_FALSE(reg().make("torus:5x5x5").ok());  // > 64 nodes
}

TEST(ScenarioRegistry, RandomLanAcceptsSegmentSpeedOverrides) {
  auto single_speed = reg().make("random-lan:11@100");
  ASSERT_TRUE(single_speed.ok()) << single_speed.error().to_string();
  for (const auto& truth : single_speed.value().ground_truth) {
    EXPECT_DOUBLE_EQ(truth.local_bw_bps, mbps(100));
  }
  // Same seed, same layout, regardless of the speed palette.
  auto multi_speed = reg().make("random-lan:11@10/33/100");
  ASSERT_TRUE(multi_speed.ok());
  EXPECT_EQ(host_count(multi_speed.value()), host_count(single_speed.value()));
}

TEST(ScenarioSpec, FileSpecsKeepThePathVerbatim) {
  auto spec = ScenarioSpec::parse("file:/tmp/my platform@v2/map:x.gridml");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec.value().name, "file");
  EXPECT_EQ(spec.value().payload, "/tmp/my platform@v2/map:x.gridml");
  EXPECT_TRUE(spec.value().dims.empty());
  EXPECT_TRUE(spec.value().rates_mbps.empty());
  EXPECT_EQ(spec.value().to_string(), "file:/tmp/my platform@v2/map:x.gridml");
  EXPECT_FALSE(ScenarioSpec::parse("file:").ok());
  EXPECT_FALSE(ScenarioSpec::parse("file:   ").ok());
}

TEST(ScenarioRegistry, StampsCanonicalSpecAsScenarioName) {
  EXPECT_EQ(reg().make("dumbbell").value().name, "dumbbell");
  EXPECT_EQ(reg().make("dumbbell:3x3@100/10").value().name, "dumbbell:3x3@100/10");
  EXPECT_EQ(reg().make("random-lan:7").value().name, "random-lan:7");
}

TEST(ScenarioRegistry, RejectsExcessOrInvalidParameters) {
  // ens-lyon takes no parameters at all.
  EXPECT_FALSE(reg().make("ens-lyon:3").ok());
  EXPECT_FALSE(reg().make("ens-lyon@100").ok());
  // star takes one dimension and one rate.
  EXPECT_FALSE(reg().make("star:3x3").ok());
  EXPECT_FALSE(reg().make("star:8@100/10").ok());
  // Dimensions must be positive.
  auto zero = reg().make("star:0@100");
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.error().code, ErrorCode::invalid_argument);
  EXPECT_FALSE(reg().make("dumbbell:-3x3").ok());
}

TEST(ScenarioRegistry, CatalogListsEveryEntry) {
  const auto entries = reg().entries();
  EXPECT_GE(entries.size(), 8u);
  const std::string catalog = reg().render_catalog();
  for (const auto* entry : entries) {
    EXPECT_NE(catalog.find(entry->name), std::string::npos) << entry->name;
  }
  // Entries are name-sorted.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1]->name, entries[i]->name);
  }
}

}  // namespace
}  // namespace envnws::api
