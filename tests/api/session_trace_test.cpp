// api::Session probe-engine spec strings: record:/replay:/replay-lenient:/
// fault: wiring, the per-zone trace files of concurrent mapping, and the
// distinct trace-exhausted failure of map() (the error carries the
// offending experiment index — a half-replayed view must never pass as a
// successful mapping).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "api/envnws.hpp"
#include "env/env_tree.hpp"
#include "env/trace_probe_engine.hpp"

namespace envnws::api {
namespace {

namespace fs = std::filesystem;

simnet::Scenario make_scenario(const std::string& spec) {
  auto made = ScenarioRegistry::builtin().make(spec);
  EXPECT_TRUE(made.ok()) << spec;
  return std::move(made.value());
}

void expect_identical(const env::MapResult& a, const env::MapResult& b) {
  // The one definition of "bit-identical" (stats at full precision,
  // grid, views, zones); a mismatch diffs the full digests.
  EXPECT_EQ(a.identity_digest(), b.identity_digest());
}

TEST(SessionProbeSpec, RejectsMalformedSpecs) {
  auto scenario = make_scenario("dumbbell");
  simnet::Network net(simnet::Scenario(scenario).topology);
  Session session(net, scenario);
  // The fault specs include out-of-range / wrapping counters: they must
  // come back as Result errors, never as exceptions escaping the call.
  for (const char* bad : {"teleport:/tmp/x", "record:", "replay:", "fault:", "fault:bw#1=explode",
                          "fault:bw#huge=fail:timeout", "fault:bw#-1=fail",
                          "fault:bw#99999999999999999999999=fail:timeout"}) {
    auto status = session.set_probe_engine_spec(bad);
    ASSERT_FALSE(status.ok()) << bad;
    EXPECT_EQ(status.error().code, ErrorCode::invalid_argument) << bad;
  }
  // A replay of a file that does not exist fails eagerly, at set time.
  auto missing = session.set_probe_engine_spec("replay:/definitely/not/there.envtrace");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::not_found);
  // "sim" and the empty spec restore the default factory.
  EXPECT_TRUE(session.set_probe_engine_spec("sim").ok());
  EXPECT_EQ(session.probe_engine_spec(), "sim");
}

TEST(SessionProbeSpec, RecordThenReplayReproducesTheMappingWithZeroProbes) {
  const std::string path = (fs::path(::testing::TempDir()) / "session-rr.envtrace").string();
  auto scenario = make_scenario("two-cluster:3");

  simnet::Network record_net(simnet::Scenario(scenario).topology);
  Session recorder(record_net, scenario);
  EventLog record_log;
  recorder.set_observer(&record_log);
  ASSERT_TRUE(recorder.set_probe_engine_spec("record:" + path).ok());
  ASSERT_TRUE(recorder.map().ok());
  bool noted = false;
  for (const auto& event : record_log.events()) {
    noted = noted || event.detail.find("probe trace recorded to") != std::string::npos;
  }
  EXPECT_TRUE(noted);

  simnet::Network replay_net(simnet::Scenario(scenario).topology);
  Session replayer(replay_net, scenario);
  ASSERT_TRUE(replayer.set_probe_engine_spec("replay:" + path).ok());
  ASSERT_TRUE(replayer.map().ok());
  expect_identical(recorder.map_result(), replayer.map_result());
  // The replay session's network carried zero probe flows.
  const auto& purposes = replay_net.stats().by_purpose;
  EXPECT_EQ(purposes.find("env-probe"), purposes.end());

  // The replayed view drives the rest of the pipeline like a live one.
  ASSERT_TRUE(replayer.plan().ok());
  ASSERT_TRUE(replayer.validate().ok());
  EXPECT_TRUE(replayer.validation().complete);
}

TEST(SessionProbeSpec, ExhaustedReplayFailsMapWithTheExperimentIndex) {
  const std::string full_path = (fs::path(::testing::TempDir()) / "session-full.envtrace").string();
  const std::string cut_path = (fs::path(::testing::TempDir()) / "session-cut.envtrace").string();
  auto scenario = make_scenario("dumbbell:3x3@100/10");

  simnet::Network record_net(simnet::Scenario(scenario).topology);
  Session recorder(record_net, scenario);
  ASSERT_TRUE(recorder.set_probe_engine_spec("record:" + full_path).ok());
  ASSERT_TRUE(recorder.map().ok());

  // Cut the trace short mid-mapping and replay it strictly.
  auto trace = env::ProbeTrace::load(full_path);
  ASSERT_TRUE(trace.ok());
  const std::size_t keep = trace.value().records.size() / 2;
  trace.value().records.resize(keep);
  ASSERT_TRUE(trace.value().save(cut_path).ok());

  simnet::Network replay_net(simnet::Scenario(scenario).topology);
  Session replayer(replay_net, scenario);
  EventLog log;
  replayer.set_observer(&log);
  ASSERT_TRUE(replayer.set_probe_engine_spec("replay:" + cut_path).ok());
  auto status = replayer.map();
  ASSERT_FALSE(status.ok());
  // Distinct, indexed failure — not a generic mapping error.
  EXPECT_EQ(status.error().code, ErrorCode::protocol);
  EXPECT_NE(status.error().message.find("exhausted at experiment " + std::to_string(keep)),
            std::string::npos)
      << status.error().message;
  EXPECT_FALSE(replayer.has(Stage::map));
  ASSERT_FALSE(log.events().empty());
  const Event& last = log.events().back();
  EXPECT_EQ(last.kind, Event::Kind::stage_failed);
  EXPECT_NE(last.detail.find("exhausted"), std::string::npos);

  // The lenient mode maps the same truncated trace to completion by
  // falling back to the simulator for the missing tail...
  simnet::Network lenient_net(simnet::Scenario(scenario).topology);
  Session lenient(lenient_net, scenario);
  ASSERT_TRUE(lenient.set_probe_engine_spec("replay-lenient:" + cut_path).ok());
  ASSERT_TRUE(lenient.map().ok());
  // ...reproducing the live view (the sim is deterministic), though the
  // fallback probes now show up as live traffic.
  EXPECT_EQ(env::render_effective(lenient.map_result().root),
            env::render_effective(recorder.map_result().root));
}

TEST(SessionProbeSpec, ThreadedRecordingWritesAndReplaysPerZoneTraces) {
  const std::string path = (fs::path(::testing::TempDir()) / "session-zones.envtrace").string();
  auto scenario = make_scenario("multi-firewall:2x2");

  // Live parallel mapping, recorded: one trace file per firewall zone.
  simnet::Network record_net(simnet::Scenario(scenario).topology);
  Session recorder(record_net, scenario);
  recorder.options().mapper.map_threads = 3;
  ASSERT_TRUE(recorder.set_probe_engine_spec("record:" + path).ok());
  ASSERT_TRUE(recorder.map().ok());
  const std::size_t zones = recorder.map_result().zones.size();
  ASSERT_EQ(zones, 3u);
  for (std::size_t z = 0; z < zones; ++z) {
    EXPECT_TRUE(fs::exists(env::zone_trace_path(path, z))) << z;
  }

  // Replay with the same thread mode: bit-identical, zero live probes.
  simnet::Network replay_net(simnet::Scenario(scenario).topology);
  Session replayer(replay_net, scenario);
  replayer.options().mapper.map_threads = 3;
  ASSERT_TRUE(replayer.set_probe_engine_spec("replay:" + path).ok());
  ASSERT_TRUE(replayer.map().ok());
  expect_identical(recorder.map_result(), replayer.map_result());
  const auto& purposes = replay_net.stats().by_purpose;
  EXPECT_EQ(purposes.find("env-probe"), purposes.end());

  // A per-zone recording cannot replay sequentially: say so, loudly.
  simnet::Network seq_net(simnet::Scenario(scenario).topology);
  Session sequential(seq_net, scenario);
  ASSERT_TRUE(sequential.set_probe_engine_spec("replay:" + path).ok());
  auto status = sequential.map();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("per-zone"), std::string::npos)
      << status.error().message;
}

TEST(SessionProbeSpec, ReRecordingScrubsStaleTraceFilesAtThePath) {
  const std::string path = (fs::path(::testing::TempDir()) / "session-scrub.envtrace").string();
  auto scenario = make_scenario("multi-firewall:2x2");

  // Sequential recording first: the single root file.
  simnet::Network seq_net(simnet::Scenario(scenario).topology);
  Session sequential(seq_net, scenario);
  ASSERT_TRUE(sequential.set_probe_engine_spec("record:" + path).ok());
  ASSERT_TRUE(sequential.map().ok());
  ASSERT_TRUE(fs::exists(path));

  // Re-record the same path threaded: the stale root file must go — a
  // later sequential replay would otherwise silently replay it as truth.
  simnet::Network par_net(simnet::Scenario(scenario).topology);
  Session parallel(par_net, scenario);
  parallel.options().mapper.map_threads = 3;
  ASSERT_TRUE(parallel.set_probe_engine_spec("record:" + path).ok());
  ASSERT_TRUE(parallel.map().ok());
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(env::zone_trace_path(path, 2)));

  // And back: a sequential re-record scrubs the stale per-zone files.
  simnet::Network again_net(simnet::Scenario(scenario).topology);
  Session again(again_net, scenario);
  ASSERT_TRUE(again.set_probe_engine_spec("record:" + path).ok());
  ASSERT_TRUE(again.map().ok());
  EXPECT_TRUE(fs::exists(path));
  for (std::size_t z = 0; z < 3; ++z) {
    EXPECT_FALSE(fs::exists(env::zone_trace_path(path, z))) << z;
  }
}

TEST(SessionProbeSpec, TraceAndFaultSpecsBypassThePersistentMapCache) {
  const fs::path dir = fs::path(::testing::TempDir()) / "session-trace-cache";
  fs::remove_all(dir);
  const std::string path = (fs::path(::testing::TempDir()) / "session-cache.envtrace").string();
  fs::remove(path);
  auto scenario = make_scenario("two-cluster:2");

  // Warm the cache with a clean run.
  simnet::Network warm_net(simnet::Scenario(scenario).topology);
  Session warm(warm_net, scenario);
  warm.set_map_cache(dir.string());
  ASSERT_TRUE(warm.map().ok());
  ASSERT_TRUE(warm.map_result().warnings.empty());

  // record: must really probe and really write, cache hit or not.
  simnet::Network record_net(simnet::Scenario(scenario).topology);
  Session recorder(record_net, scenario);
  recorder.set_map_cache(dir.string());
  ASSERT_TRUE(recorder.set_probe_engine_spec("record:" + path).ok());
  ASSERT_TRUE(recorder.map().ok());
  EXPECT_GT(recorder.map_result().stats.experiments, 0u);
  EXPECT_TRUE(fs::exists(path));

  // fault: must not poison the cache entry with its perturbed result...
  simnet::Network fault_net(simnet::Scenario(scenario).topology);
  Session faulty(fault_net, scenario);
  faulty.set_map_cache(dir.string());
  ASSERT_TRUE(faulty.set_probe_engine_spec("fault:bw#0=fail:timeout").ok());
  ASSERT_TRUE(faulty.map().ok());
  ASSERT_FALSE(faulty.map_result().warnings.empty());

  // ...so a later clean session still reloads the clean mapping.
  simnet::Network clean_net(simnet::Scenario(scenario).topology);
  Session clean(clean_net, scenario);
  clean.set_map_cache(dir.string());
  ASSERT_TRUE(clean.map().ok());
  EXPECT_EQ(clean.map_result().stats.experiments, 0u);  // cache hit
  EXPECT_TRUE(clean.map_result().warnings.empty());
  EXPECT_EQ(clean.map_result().grid.to_string(), warm.map_result().grid.to_string());
}

TEST(SessionProbeSpec, FaultSpecInjectsFailuresIntoTheMapping) {
  auto scenario = make_scenario("star-switch:5@100");

  simnet::Network live_net(simnet::Scenario(scenario).topology);
  Session live(live_net, scenario);
  ASSERT_TRUE(live.map().ok());
  ASSERT_TRUE(live.map_result().warnings.empty());

  simnet::Network fault_net(simnet::Scenario(scenario).topology);
  Session faulty(fault_net, scenario);
  ASSERT_TRUE(faulty.set_probe_engine_spec("fault:bw#0=fail:timeout").ok());
  ASSERT_TRUE(faulty.map().ok());
  // Exactly the selected experiment failed; the mapper degraded it to a
  // warning naming the injected fault.
  ASSERT_FALSE(faulty.map_result().warnings.empty());
  EXPECT_NE(faulty.map_result().warnings.front().find("injected fault"), std::string::npos)
      << faulty.map_result().warnings.front();
  EXPECT_LT(faulty.map_result().stats.experiments, live.map_result().stats.experiments + 1);
}

}  // namespace
}  // namespace envnws::api
