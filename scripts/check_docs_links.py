#!/usr/bin/env python3
"""Fail on dead relative links in the repository's markdown docs.

Checks every markdown link / image of README.md and docs/*.md whose
target is a relative path (external http(s)/mailto links are skipped):
the target file or directory must exist, and an optional #fragment on a
markdown target must match one of its headings (GitHub anchor rules,
simplified).

Usage: scripts/check_docs_links.py [file-or-dir ...]
       (defaults to README.md and docs/, relative to the repo root)
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    anchor = heading.strip().lower()
    anchor = re.sub(r"[`*_~\[\]()]", "", anchor)
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def anchors_of(markdown_path: Path) -> set:
    text = markdown_path.read_text(encoding="utf-8")
    return {github_anchor(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(markdown_path: Path) -> list:
    errors = []
    text = markdown_path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # pure in-page fragment
            if fragment and github_anchor(fragment) not in anchors_of(markdown_path):
                errors.append(f"{markdown_path}: dead in-page anchor '#{fragment}'")
            continue
        resolved = (markdown_path.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{markdown_path}: dead relative link '{target}'")
            continue
        if fragment and resolved.suffix.lower() in (".md", ".markdown"):
            if github_anchor(fragment) not in anchors_of(resolved):
                errors.append(f"{markdown_path}: dead anchor '{target}'")
    return errors


def main(argv: list) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    roots = [Path(arg) for arg in argv[1:]] or [repo_root / "README.md", repo_root / "docs"]
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.exists():
            files.append(root)
        else:
            print(f"warning: {root} does not exist", file=sys.stderr)
    errors = []
    for markdown_path in files:
        errors.extend(check_file(markdown_path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'FAILED, ' + str(len(errors)) + ' dead link(s)' if errors else 'all links OK'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
