#!/usr/bin/env python3
"""Compare two bench --json reports and fail on metric regressions.

Usage:
    python3 scripts/bench_diff.py BASELINE.json CURRENT.json \
        [--threshold 0.15] [--ignore PATTERN ...]

Both files are the output of any bench's --json flag (bench_mapping_cost,
bench_schedule_explore, bench_threshold_ablation, ...). The two trees are
walked in parallel; every numeric leaf present in both is compared and the
script exits non-zero when any relative change exceeds the threshold
(default 15%).

Wall-clock leaves are noise on shared CI runners, so paths matching the
default ignore list (elapsed/real/wall seconds) are reported but never
fatal. Pass --ignore to extend the list with regexes matched against the
dotted leaf path (e.g. 'sampled\\.sweep\\[3\\]\\..*').

Structural drift — a leaf present on one side only, or a type change — is
reported as informational: benches grow sections across PRs and a diff
tool that blocks adding a metric would just get deleted.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

# Wall-clock and machine-load metrics: meaningful locally, pure noise
# across CI runners of different generations.
DEFAULT_IGNORES = [
    r".*elapsed_seconds$",
    r".*real_seconds$",
    r".*wall_seconds$",
    r".*_ms$",
]


def walk(node, path, leaves):
    """Flatten `node` into {dotted_path: leaf_value}."""
    if isinstance(node, dict):
        for key, value in node.items():
            walk(value, f"{path}.{key}" if path else key, leaves)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            walk(value, f"{path}[{index}]", leaves)
    else:
        leaves[path] = node


def relative_change(old, new):
    if old == new:
        return 0.0
    if old == 0:
        return float("inf")
    return abs(new - old) / abs(old)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max allowed relative change per numeric leaf (default 0.15)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="PATTERN",
        help="extra leaf-path regex to report without failing on",
    )
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.current, encoding="utf-8") as fh:
        current = json.load(fh)

    ignores = [re.compile(p) for p in DEFAULT_IGNORES + args.ignore]

    old_leaves, new_leaves = {}, {}
    walk(baseline, "", old_leaves)
    walk(current, "", new_leaves)

    regressions = []
    notes = []
    for path in sorted(set(old_leaves) | set(new_leaves)):
        if path not in old_leaves:
            notes.append(f"new leaf: {path} = {new_leaves[path]!r}")
            continue
        if path not in new_leaves:
            notes.append(f"removed leaf: {path} (was {old_leaves[path]!r})")
            continue
        old, new = old_leaves[path], new_leaves[path]
        numeric = (
            isinstance(old, (int, float))
            and isinstance(new, (int, float))
            and not isinstance(old, bool)
            and not isinstance(new, bool)
        )
        if not numeric:
            if old != new:
                notes.append(f"changed: {path}: {old!r} -> {new!r}")
            continue
        change = relative_change(old, new)
        if change <= args.threshold:
            continue
        line = f"{path}: {old} -> {new} ({change * 100.0:.1f}% change)"
        if any(p.match(path) for p in ignores):
            notes.append(f"ignored (noisy): {line}")
        else:
            regressions.append(line)

    for note in notes:
        print(f"  note: {note}")
    if regressions:
        print(
            f"FAIL: {len(regressions)} leaf metric(s) moved more than "
            f"{args.threshold * 100.0:.0f}% vs {args.baseline}:"
        )
        for line in regressions:
            print(f"  {line}")
        return 1
    print(
        f"OK: {len(set(old_leaves) & set(new_leaves))} shared leaves within "
        f"{args.threshold * 100.0:.0f}% ({len(notes)} informational note(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
